package ctlproto

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"github.com/splaykit/splay/internal/transport"
)

// sampleMsgs covers every frame the control plane emits, plus edge cases:
// empty strings, zero ports, empty and nil slices, negative ints, strings
// that force the encoding/json fallback (escapes, HTML characters,
// non-ASCII), and raw Params payloads.
func sampleMsgs() []Msg {
	return []Msg{
		{},
		{Seq: 1, Type: THello, Name: "n42", Key: "k-n42", PortLow: 20000, PortHigh: 29999},
		{Seq: 7, Type: TWelcome, Hosts: []string{"10.0.0.1", "evil-host"}},
		{Seq: 9, Type: TWelcome, Hosts: []string{}},
		{Type: TPing, Seq: 18446744073709551615},
		{Seq: 3, Type: TAck, Port: 20001},
		{Seq: 4, Type: TErr, Err: "already registered"},
		{Seq: 5, Type: TRegister, Job: &Job{ID: "job-1", App: "pingapp"}},
		{Seq: 6, Type: TList, Job: &Job{
			ID: "job-1", App: "pingapp", Position: 3,
			Nodes: []transport.Addr{{Host: "n1", Port: 8000}, {Host: "n2", Port: 0}},
		}},
		{Seq: 6, Type: TList, Job: &Job{ID: "j", App: "a", Nodes: []transport.Addr{}}},
		{Seq: 8, Type: TStart, Job: &Job{ID: "job-2", App: "chord", Params: json.RawMessage(`{"bits":16}`)}},
		{Seq: 8, Type: TStart, Job: &Job{ID: "job-2", App: "chord", Position: -4}},
		{Seq: 2, Type: TErr, Err: `needs "quotes" and \backslash`},
		{Seq: 2, Type: TErr, Err: "html <&> chars"},
		{Seq: 2, Type: THello, Name: "ünïcode"},
		{Seq: 2, Type: THello, Name: "ctrl\x01char"},
		{Seq: 11, Type: TBlacklist, Hosts: []string{"a", "<b>"}},
	}
}

// TestFastCodecMatchesEncodingJSON is the byte-compatibility contract:
// whenever the fast encoder claims a message, its bytes equal
// json.Marshal's; and the fast parser applied to json.Marshal output
// either reproduces json.Unmarshal's result exactly or declines.
func TestFastCodecMatchesEncodingJSON(t *testing.T) {
	for i, m := range sampleMsgs() {
		m := m
		want, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("msg %d: marshal: %v", i, err)
		}
		if got, ok := m.AppendJSON(nil); ok {
			if !bytes.Equal(got, want) {
				t.Errorf("msg %d: fast encode diverges:\n got  %s\n want %s", i, got, want)
			}
		} else if jsonSafeMsg(&m) {
			t.Errorf("msg %d: fast encoder declined a safe message %s", i, want)
		}

		var viaJSON, viaFast Msg
		if err := json.Unmarshal(want, &viaJSON); err != nil {
			t.Fatalf("msg %d: unmarshal: %v", i, err)
		}
		if viaFast.ParseJSON(want) {
			if !reflect.DeepEqual(viaFast, viaJSON) {
				t.Errorf("msg %d: fast decode diverges:\n got  %+v\n want %+v", i, viaFast, viaJSON)
			}
		} else if !reflect.DeepEqual(viaFast, Msg{}) {
			t.Errorf("msg %d: declined ParseJSON mutated the receiver: %+v", i, viaFast)
		}
	}
}

// jsonSafeMsg mirrors the encoder's own fallback conditions, so the test
// catches an encoder that declines too eagerly.
func jsonSafeMsg(m *Msg) bool {
	ok := jsonSafe(m.Type) && jsonSafe(m.Name) && jsonSafe(m.Key) && jsonSafe(m.Err)
	for _, h := range m.Hosts {
		ok = ok && jsonSafe(h)
	}
	if j := m.Job; j != nil {
		ok = ok && len(j.Params) == 0 && jsonSafe(j.ID) && jsonSafe(j.App)
		for _, a := range j.Nodes {
			ok = ok && jsonSafe(a.Host)
		}
	}
	return ok
}

// TestFastCodecRandomized fuzzes the contract over random messages built
// from a mixed alphabet (safe ASCII, HTML metacharacters, escapes,
// UTF-8, control bytes).
func TestFastCodecRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2009))
	alphabet := []string{"a", "Z", "0", "-", "_", ".", ":", " ", `"`, `\`, "<", "&", "é", "\x7f", "\n"}
	randStr := func() string {
		var b []byte
		for n := rng.Intn(8); n > 0; n-- {
			b = append(b, alphabet[rng.Intn(len(alphabet))]...)
		}
		return string(b)
	}
	types := []string{THello, TRegister, TList, TPing, TAck, TErr, TBlacklist}
	for i := 0; i < 2000; i++ {
		m := Msg{
			Seq:  rng.Uint64() >> uint(rng.Intn(64)),
			Type: types[rng.Intn(len(types))],
		}
		if rng.Intn(2) == 0 {
			m.Name, m.Key = randStr(), randStr()
			m.PortLow, m.PortHigh = rng.Intn(3)*20000, rng.Intn(3)*29999
		}
		if rng.Intn(2) == 0 {
			m.Job = &Job{ID: randStr(), App: randStr(), Position: rng.Intn(5) - 2}
			for n := rng.Intn(4); n > 0; n-- {
				m.Job.Nodes = append(m.Job.Nodes, transport.Addr{Host: randStr(), Port: rng.Intn(70000) - 2})
			}
			if rng.Intn(4) == 0 {
				m.Job.Params = json.RawMessage(`[1,2]`)
			}
		}
		if rng.Intn(3) == 0 {
			for n := rng.Intn(3); n > 0; n-- {
				m.Hosts = append(m.Hosts, randStr())
			}
		}
		m.Port = rng.Intn(2) * rng.Intn(70000)
		m.Err = randStr()

		want, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		if got, ok := m.AppendJSON(nil); ok {
			if !bytes.Equal(got, want) {
				t.Fatalf("case %d: fast encode diverges:\n got  %s\n want %s", i, got, want)
			}
		} else if jsonSafeMsg(&m) {
			t.Fatalf("case %d: fast encoder declined safe message %s", i, want)
		}
		var viaJSON, viaFast Msg
		if err := json.Unmarshal(want, &viaJSON); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if viaFast.ParseJSON(want) && !reflect.DeepEqual(viaFast, viaJSON) {
			t.Fatalf("case %d: fast decode diverges on %s:\n got  %+v\n want %+v", i, want, viaFast, viaJSON)
		}
	}
}

// TestParseJSONRejectsMalformed pins the parser's decline-don't-guess
// behavior on inputs it must hand to encoding/json.
func TestParseJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		``, `{`, `[]`, `null`, `{"seq":}`, `{"seq":1.5,"type":"ping"}`,
		`{"seq":1e3,"type":"ping"}`, `{"unknown":1}`,
		`{"seq":1,"type":"pi\u006eg"}`, `{"seq":1,"type":"ping"}x`,
		`{"seq":-1,"type":"ping"}`, `{"job":null}`, `{"job":{"params":{}}}`,
		`{"seq":1,"type":"ping","port":true}`,
		`{"seq":18446744073709551616,"type":"ack"}`, // uint64 overflow must not wrap
		`{"seq":01,"type":"ping"}`,                  // leading zero is invalid JSON
		`{"seq":00,"type":"ping"}`,
	}
	for _, src := range cases {
		var m Msg
		if m.ParseJSON([]byte(src)) {
			// Acceptance is only wrong if encoding/json disagrees.
			var ref Msg
			if err := json.Unmarshal([]byte(src), &ref); err != nil || !reflect.DeepEqual(m, ref) {
				t.Errorf("ParseJSON accepted %q (got %+v)", src, m)
			}
		}
	}
}
