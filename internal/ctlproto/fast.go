package ctlproto

import (
	"strconv"

	"github.com/splaykit/splay/internal/llenc"
	"github.com/splaykit/splay/internal/transport"
)

// Fast-path JSON codec for Msg, the control plane's only frame type.
// Profiling the controller at thousands of daemons shows reflection-based
// encoding/json dominating CPU on both sides of the session (REGISTER
// fan-out, ping monitoring), so Msg implements llenc's FastMarshaler and
// FastUnmarshaler. The encoding is byte-for-byte identical to
// encoding/json's output for this struct — field order, omitempty rules,
// HTML escaping — which TestFastCodecMatchesEncodingJSON checks
// differentially; anything the fast path cannot reproduce exactly
// (strings needing escapes, non-ASCII, raw Params payloads) reports
// false and the caller falls back to encoding/json, so the wire format
// never diverges. The character-class rules and lexer primitives are
// shared with the RPC envelope codec via llenc (JSONSafe, Lexer).

// jsonSafe reports whether encoding/json would emit s as a plain quoted
// string.
func jsonSafe(s string) bool { return llenc.JSONSafe(s) }

// AppendJSON implements llenc.FastMarshaler. On success the appended
// bytes equal json.Marshal(m); on false buf is returned unchanged.
func (m *Msg) AppendJSON(buf []byte) ([]byte, bool) {
	if !jsonSafe(m.Type) || !jsonSafe(m.Name) || !jsonSafe(m.Key) || !jsonSafe(m.Err) {
		return buf, false
	}
	for _, h := range m.Hosts {
		if !jsonSafe(h) {
			return buf, false
		}
	}
	if j := m.Job; j != nil {
		if len(j.Params) > 0 || !jsonSafe(j.ID) || !jsonSafe(j.App) {
			return buf, false
		}
		for _, a := range j.Nodes {
			if !jsonSafe(a.Host) {
				return buf, false
			}
		}
	}
	b := append(buf, `{"seq":`...)
	b = llenc.AppendUint(b, m.Seq)
	b = append(b, `,"type":"`...)
	b = append(b, m.Type...)
	b = append(b, '"')
	if m.Name != "" {
		b = appendStrField(b, `,"name":"`, m.Name)
	}
	if m.Key != "" {
		b = appendStrField(b, `,"key":"`, m.Key)
	}
	if m.PortLow != 0 {
		b = appendIntField(b, `,"port_low":`, m.PortLow)
	}
	if m.PortHigh != 0 {
		b = appendIntField(b, `,"port_high":`, m.PortHigh)
	}
	if j := m.Job; j != nil {
		b = append(b, `,"job":{"id":"`...)
		b = append(b, j.ID...)
		b = append(b, `","app":"`...)
		b = append(b, j.App...)
		b = append(b, '"')
		if j.Position != 0 {
			b = appendIntField(b, `,"position":`, j.Position)
		}
		if len(j.Nodes) > 0 {
			b = append(b, `,"nodes":[`...)
			for i, a := range j.Nodes {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, `{"host":"`...)
				b = append(b, a.Host...)
				b = append(b, `","port":`...)
				b = strconv.AppendInt(b, int64(a.Port), 10)
				b = append(b, '}')
			}
			b = append(b, ']')
		}
		b = append(b, '}')
	}
	if len(m.Hosts) > 0 {
		b = append(b, `,"hosts":[`...)
		for i, h := range m.Hosts {
			if i > 0 {
				b = append(b, ',')
			}
			b = llenc.AppendJSONString(b, h)
		}
		b = append(b, ']')
	}
	if m.Port != 0 {
		b = appendIntField(b, `,"port":`, m.Port)
	}
	if m.Err != "" {
		b = appendStrField(b, `,"err":"`, m.Err)
	}
	b = append(b, '}')
	return b, true
}

func appendStrField(b []byte, prefix, s string) []byte {
	b = append(b, prefix...)
	b = append(b, s...)
	return append(b, '"')
}

func appendIntField(b []byte, prefix string, v int) []byte {
	b = append(b, prefix...)
	return strconv.AppendInt(b, int64(v), 10)
}

// ParseJSON implements llenc.FastUnmarshaler: a non-recursive parser for
// the exact shape the fast encoder (and encoding/json on this struct)
// produces. It reports false — leaving m untouched — on anything it does
// not handle: escape sequences, unknown keys, null, floats, or raw
// Params payloads. The caller then retries with encoding/json.
func (m *Msg) ParseJSON(data []byte) bool {
	p := parser{Lexer: llenc.Lexer{Data: data}}
	var out Msg
	if !p.parseMsg(&out) {
		return false
	}
	if !p.End() {
		return false
	}
	*m = out
	return true
}

type parser struct {
	llenc.Lexer
}

// internType avoids a string allocation for the protocol's fixed command
// and answer types (the compiler performs the switch without converting).
func internType(b []byte) string {
	switch string(b) {
	case THello:
		return THello
	case TWelcome:
		return TWelcome
	case TRegister:
		return TRegister
	case TList:
		return TList
	case TStart:
		return TStart
	case TStop:
		return TStop
	case TFree:
		return TFree
	case TPing:
		return TPing
	case TAck:
		return TAck
	case TErr:
		return TErr
	case TBlacklist:
		return TBlacklist
	}
	return string(b)
}

func (p *parser) parseMsg(out *Msg) bool {
	p.SkipWS()
	if !p.Consume('{') {
		return false
	}
	p.SkipWS()
	if p.Consume('}') {
		return true
	}
	for {
		p.SkipWS()
		key, ok := p.RawString()
		if !ok {
			return false
		}
		p.SkipWS()
		if !p.Consume(':') {
			return false
		}
		p.SkipWS()
		switch string(key) {
		case "seq":
			out.Seq, ok = p.Uint()
		case "type":
			var b []byte
			b, ok = p.RawString()
			out.Type = internType(b)
		case "name":
			out.Name, ok = p.String()
		case "key":
			out.Key, ok = p.String()
		case "port_low":
			out.PortLow, ok = p.Int()
		case "port_high":
			out.PortHigh, ok = p.Int()
		case "job":
			out.Job = &Job{}
			ok = p.parseJob(out.Job)
		case "hosts":
			out.Hosts, ok = p.parseStrings()
		case "port":
			out.Port, ok = p.Int()
		case "err":
			out.Err, ok = p.String()
		default:
			return false
		}
		if !ok {
			return false
		}
		p.SkipWS()
		if p.Consume(',') {
			continue
		}
		return p.Consume('}')
	}
}

func (p *parser) parseJob(out *Job) bool {
	if !p.Consume('{') {
		return false
	}
	p.SkipWS()
	if p.Consume('}') {
		return true
	}
	for {
		p.SkipWS()
		key, ok := p.RawString()
		if !ok {
			return false
		}
		p.SkipWS()
		if !p.Consume(':') {
			return false
		}
		p.SkipWS()
		switch string(key) {
		case "id":
			out.ID, ok = p.String()
		case "app":
			out.App, ok = p.String()
		case "position":
			out.Position, ok = p.Int()
		case "nodes":
			ok = p.parseAddrs(&out.Nodes)
		default:
			// Including "params": raw payloads keep encoding/json's exact
			// semantics via the fallback.
			return false
		}
		if !ok {
			return false
		}
		p.SkipWS()
		if p.Consume(',') {
			continue
		}
		return p.Consume('}')
	}
}

func (p *parser) parseStrings() ([]string, bool) {
	if !p.Consume('[') {
		return nil, false
	}
	p.SkipWS()
	if p.Consume(']') {
		return []string{}, true
	}
	var out []string
	for {
		p.SkipWS()
		s, ok := p.String()
		if !ok {
			return nil, false
		}
		out = append(out, s)
		p.SkipWS()
		if p.Consume(',') {
			continue
		}
		if p.Consume(']') {
			return out, true
		}
		return nil, false
	}
}

func (p *parser) parseAddrs(out *[]transport.Addr) bool {
	if !p.Consume('[') {
		return false
	}
	p.SkipWS()
	if p.Consume(']') {
		*out = []transport.Addr{}
		return true
	}
	var addrs []transport.Addr
	for {
		p.SkipWS()
		a, ok := p.parseAddr()
		if !ok {
			return false
		}
		addrs = append(addrs, a)
		p.SkipWS()
		if p.Consume(',') {
			continue
		}
		if p.Consume(']') {
			*out = addrs
			return true
		}
		return false
	}
}

func (p *parser) parseAddr() (transport.Addr, bool) {
	var a transport.Addr
	if !p.Consume('{') {
		return a, false
	}
	p.SkipWS()
	if p.Consume('}') {
		return a, true
	}
	for {
		p.SkipWS()
		key, ok := p.RawString()
		if !ok {
			return a, false
		}
		p.SkipWS()
		if !p.Consume(':') {
			return a, false
		}
		p.SkipWS()
		switch string(key) {
		case "host":
			a.Host, ok = p.String()
		case "port":
			a.Port, ok = p.Int()
		default:
			return a, false
		}
		if !ok {
			return a, false
		}
		p.SkipWS()
		if p.Consume(',') {
			continue
		}
		return a, p.Consume('}')
	}
}
