package ctlproto

import (
	"strconv"

	"github.com/splaykit/splay/internal/transport"
)

// Fast-path JSON codec for Msg, the control plane's only frame type.
// Profiling the controller at thousands of daemons shows reflection-based
// encoding/json dominating CPU on both sides of the session (REGISTER
// fan-out, ping monitoring), so Msg implements llenc's FastMarshaler and
// FastUnmarshaler. The encoding is byte-for-byte identical to
// encoding/json's output for this struct — field order, omitempty rules,
// HTML escaping — which TestFastCodecMatchesEncodingJSON checks
// differentially; anything the fast path cannot reproduce exactly
// (strings needing escapes, non-ASCII, raw Params payloads) reports
// false and the caller falls back to encoding/json, so the wire format
// never diverges.

// jsonSafe reports whether encoding/json would emit s as a plain quoted
// string: printable ASCII with no characters that JSON or the default
// HTML escaping would rewrite.
func jsonSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// AppendJSON implements llenc.FastMarshaler. On success the appended
// bytes equal json.Marshal(m); on false buf is returned unchanged.
func (m *Msg) AppendJSON(buf []byte) ([]byte, bool) {
	if !jsonSafe(m.Type) || !jsonSafe(m.Name) || !jsonSafe(m.Key) || !jsonSafe(m.Err) {
		return buf, false
	}
	for _, h := range m.Hosts {
		if !jsonSafe(h) {
			return buf, false
		}
	}
	if j := m.Job; j != nil {
		if len(j.Params) > 0 || !jsonSafe(j.ID) || !jsonSafe(j.App) {
			return buf, false
		}
		for _, a := range j.Nodes {
			if !jsonSafe(a.Host) {
				return buf, false
			}
		}
	}
	b := append(buf, `{"seq":`...)
	b = strconv.AppendUint(b, m.Seq, 10)
	b = append(b, `,"type":"`...)
	b = append(b, m.Type...)
	b = append(b, '"')
	if m.Name != "" {
		b = appendStrField(b, `,"name":"`, m.Name)
	}
	if m.Key != "" {
		b = appendStrField(b, `,"key":"`, m.Key)
	}
	if m.PortLow != 0 {
		b = appendIntField(b, `,"port_low":`, m.PortLow)
	}
	if m.PortHigh != 0 {
		b = appendIntField(b, `,"port_high":`, m.PortHigh)
	}
	if j := m.Job; j != nil {
		b = append(b, `,"job":{"id":"`...)
		b = append(b, j.ID...)
		b = append(b, `","app":"`...)
		b = append(b, j.App...)
		b = append(b, '"')
		if j.Position != 0 {
			b = appendIntField(b, `,"position":`, j.Position)
		}
		if len(j.Nodes) > 0 {
			b = append(b, `,"nodes":[`...)
			for i, a := range j.Nodes {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, `{"host":"`...)
				b = append(b, a.Host...)
				b = append(b, `","port":`...)
				b = strconv.AppendInt(b, int64(a.Port), 10)
				b = append(b, '}')
			}
			b = append(b, ']')
		}
		b = append(b, '}')
	}
	if len(m.Hosts) > 0 {
		b = append(b, `,"hosts":[`...)
		for i, h := range m.Hosts {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, '"')
			b = append(b, h...)
			b = append(b, '"')
		}
		b = append(b, ']')
	}
	if m.Port != 0 {
		b = appendIntField(b, `,"port":`, m.Port)
	}
	if m.Err != "" {
		b = appendStrField(b, `,"err":"`, m.Err)
	}
	b = append(b, '}')
	return b, true
}

func appendStrField(b []byte, prefix, s string) []byte {
	b = append(b, prefix...)
	b = append(b, s...)
	return append(b, '"')
}

func appendIntField(b []byte, prefix string, v int) []byte {
	b = append(b, prefix...)
	return strconv.AppendInt(b, int64(v), 10)
}

// ParseJSON implements llenc.FastUnmarshaler: a non-recursive parser for
// the exact shape the fast encoder (and encoding/json on this struct)
// produces. It reports false — leaving m untouched — on anything it does
// not handle: escape sequences, unknown keys, null, floats, or raw
// Params payloads. The caller then retries with encoding/json.
func (m *Msg) ParseJSON(data []byte) bool {
	p := parser{data: data}
	var out Msg
	if !p.parseMsg(&out) {
		return false
	}
	p.skipWS()
	if p.i != len(p.data) {
		return false
	}
	*m = out
	return true
}

type parser struct {
	data []byte
	i    int
}

func (p *parser) skipWS() {
	for p.i < len(p.data) {
		switch p.data[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// consume advances past c if it is the next byte.
func (p *parser) consume(c byte) bool {
	if p.i < len(p.data) && p.data[p.i] == c {
		p.i++
		return true
	}
	return false
}

// rawStr parses a quoted string with no escapes, returning the raw bytes
// between the quotes (non-ASCII passes through verbatim).
func (p *parser) rawStr() ([]byte, bool) {
	if !p.consume('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.data) {
		c := p.data[p.i]
		if c == '"' {
			s := p.data[start:p.i]
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		p.i++
	}
	return nil, false
}

func (p *parser) str() (string, bool) {
	b, ok := p.rawStr()
	return string(b), ok
}

// internType avoids a string allocation for the protocol's fixed command
// and answer types (the compiler performs the switch without converting).
func internType(b []byte) string {
	switch string(b) {
	case THello:
		return THello
	case TWelcome:
		return TWelcome
	case TRegister:
		return TRegister
	case TList:
		return TList
	case TStart:
		return TStart
	case TStop:
		return TStop
	case TFree:
		return TFree
	case TPing:
		return TPing
	case TAck:
		return TAck
	case TErr:
		return TErr
	case TBlacklist:
		return TBlacklist
	}
	return string(b)
}

func (p *parser) uint() (uint64, bool) {
	start := p.i
	var v uint64
	for p.i < len(p.data) {
		c := p.data[p.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		// Exact overflow check: encoding/json rejects out-of-range
		// numbers, so wrapping here would decode a frame it refuses.
		const cutoff = (1<<64 - 1) / 10
		if v > cutoff || (v == cutoff && d > (1<<64-1)%10) {
			return 0, false
		}
		v = v*10 + d
		p.i++
	}
	if p.i == start {
		return 0, false
	}
	// "00"/"01" are invalid JSON numbers; decline rather than guess.
	if p.data[start] == '0' && p.i-start > 1 {
		return 0, false
	}
	// Trailing float/exponent syntax goes to the fallback.
	if p.i < len(p.data) {
		switch p.data[p.i] {
		case '.', 'e', 'E':
			return 0, false
		}
	}
	return v, true
}

func (p *parser) int() (int, bool) {
	neg := p.consume('-')
	v, ok := p.uint()
	if !ok || v > 1<<62 {
		return 0, false
	}
	if neg {
		return int(-int64(v)), true
	}
	return int(v), true
}

func (p *parser) parseMsg(out *Msg) bool {
	p.skipWS()
	if !p.consume('{') {
		return false
	}
	p.skipWS()
	if p.consume('}') {
		return true
	}
	for {
		p.skipWS()
		key, ok := p.rawStr()
		if !ok {
			return false
		}
		p.skipWS()
		if !p.consume(':') {
			return false
		}
		p.skipWS()
		switch string(key) {
		case "seq":
			out.Seq, ok = p.uint()
		case "type":
			var b []byte
			b, ok = p.rawStr()
			out.Type = internType(b)
		case "name":
			out.Name, ok = p.str()
		case "key":
			out.Key, ok = p.str()
		case "port_low":
			out.PortLow, ok = p.int()
		case "port_high":
			out.PortHigh, ok = p.int()
		case "job":
			out.Job = &Job{}
			ok = p.parseJob(out.Job)
		case "hosts":
			out.Hosts, ok = p.parseStrings()
		case "port":
			out.Port, ok = p.int()
		case "err":
			out.Err, ok = p.str()
		default:
			return false
		}
		if !ok {
			return false
		}
		p.skipWS()
		if p.consume(',') {
			continue
		}
		return p.consume('}')
	}
}

func (p *parser) parseJob(out *Job) bool {
	if !p.consume('{') {
		return false
	}
	p.skipWS()
	if p.consume('}') {
		return true
	}
	for {
		p.skipWS()
		key, ok := p.rawStr()
		if !ok {
			return false
		}
		p.skipWS()
		if !p.consume(':') {
			return false
		}
		p.skipWS()
		switch string(key) {
		case "id":
			out.ID, ok = p.str()
		case "app":
			out.App, ok = p.str()
		case "position":
			out.Position, ok = p.int()
		case "nodes":
			ok = p.parseAddrs(&out.Nodes)
		default:
			// Including "params": raw payloads keep encoding/json's exact
			// semantics via the fallback.
			return false
		}
		if !ok {
			return false
		}
		p.skipWS()
		if p.consume(',') {
			continue
		}
		return p.consume('}')
	}
}

func (p *parser) parseStrings() ([]string, bool) {
	if !p.consume('[') {
		return nil, false
	}
	p.skipWS()
	if p.consume(']') {
		return []string{}, true
	}
	var out []string
	for {
		p.skipWS()
		s, ok := p.str()
		if !ok {
			return nil, false
		}
		out = append(out, s)
		p.skipWS()
		if p.consume(',') {
			continue
		}
		if p.consume(']') {
			return out, true
		}
		return nil, false
	}
}

func (p *parser) parseAddrs(out *[]transport.Addr) bool {
	if !p.consume('[') {
		return false
	}
	p.skipWS()
	if p.consume(']') {
		*out = []transport.Addr{}
		return true
	}
	var addrs []transport.Addr
	for {
		p.skipWS()
		a, ok := p.parseAddr()
		if !ok {
			return false
		}
		addrs = append(addrs, a)
		p.skipWS()
		if p.consume(',') {
			continue
		}
		if p.consume(']') {
			*out = addrs
			return true
		}
		return false
	}
}

func (p *parser) parseAddr() (transport.Addr, bool) {
	var a transport.Addr
	if !p.consume('{') {
		return a, false
	}
	p.skipWS()
	if p.consume('}') {
		return a, true
	}
	for {
		p.skipWS()
		key, ok := p.rawStr()
		if !ok {
			return a, false
		}
		p.skipWS()
		if !p.consume(':') {
			return a, false
		}
		p.skipWS()
		switch string(key) {
		case "host":
			a.Host, ok = p.str()
		case "port":
			a.Port, ok = p.int()
		default:
			return a, false
		}
		if !ok {
			return a, false
		}
		p.skipWS()
		if p.consume(',') {
			continue
		}
		return a, p.consume('}')
	}
}
