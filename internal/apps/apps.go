// Package apps packages the protocol implementations as deployable SPLAY
// applications: each registers a factory that builds the protocol from
// JSON job parameters and runs it against the instance's job information
// (rendez-vous bootstrap, staggered joins by deployment position) — the
// role Lua scripts play in the original system.
package apps

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/bittorrent"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/protocols/cyclon"
	"github.com/splaykit/splay/internal/protocols/epidemic"
	"github.com/splaykit/splay/internal/protocols/pastry"
)

// Register installs every built-in application into the registry. A name
// already taken in reg (e.g. by a user application) surfaces as an error
// rather than being clobbered.
func Register(reg *core.Registry) error {
	for _, b := range []struct {
		name string
		f    core.Factory
	}{
		{"chord", chordFactory},
		{"pastry", pastryFactory},
		{"cyclon", cyclonFactory},
		{"epidemic", epidemicFactory},
		{"bittorrent", bittorrentFactory},
	} {
		if err := reg.Register(b.name, b.f); err != nil {
			return fmt.Errorf("apps: %w", err)
		}
	}
	return nil
}

// Default returns a registry with all built-in applications.
func Default() *core.Registry {
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		panic(err) // fresh registry: duplicates are impossible
	}
	return reg
}

// runUntilKilled parks the app's main task while background tasks work.
func runUntilKilled(ctx *core.AppContext) {
	for !ctx.Killed() {
		ctx.Sleep(5 * time.Second)
	}
}

// ChordParams configures the "chord" application.
type ChordParams struct {
	Bits          uint `json:"bits"`
	FaultTolerant bool `json:"fault_tolerant"`
	LookupsPerMin int  `json:"lookups_per_min"`
}

func chordFactory(params json.RawMessage) (core.App, error) {
	var p ChordParams
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("chord app: %w", err)
		}
	}
	return core.AppFunc(func(ctx *core.AppContext) error {
		cfg := chord.DefaultConfig()
		if p.FaultTolerant {
			cfg = chord.FaultTolerantConfig()
		}
		if p.Bits > 0 {
			cfg.Bits = p.Bits
		}
		n, err := chord.New(ctx, cfg)
		if err != nil {
			return err
		}
		if err := n.Start(); err != nil {
			return err
		}
		// Staggered joins, one second apart, as in §5.2's descriptor.
		ctx.Sleep(time.Duration(ctx.Job.Position) * time.Second)
		if ctx.Job.Position > 1 && len(ctx.Job.Nodes) > 0 {
			if err := n.Join(ctx.Job.Nodes[0]); err != nil {
				ctx.Log.Printf("chord join failed: %v", err)
			}
		}
		n.StartMaintenance()
		if p.LookupsPerMin > 0 {
			ctx.Periodic(time.Minute/time.Duration(p.LookupsPerMin), func() {
				key := ctx.Rand().Uint64()
				if res, err := n.Lookup(key); err == nil {
					ctx.Log.Printf("lookup %d -> %s in %d hops (%s)", key, res.Node, res.Hops, res.RTT)
				}
			})
		}
		runUntilKilled(ctx)
		n.Stop()
		return nil
	}), nil
}

// PastryParams configures the "pastry" application.
type PastryParams struct {
	LookupsPerMin int `json:"lookups_per_min"`
}

func pastryFactory(params json.RawMessage) (core.App, error) {
	var p PastryParams
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("pastry app: %w", err)
		}
	}
	return core.AppFunc(func(ctx *core.AppContext) error {
		n := pastry.New(ctx, pastry.DefaultConfig())
		if err := n.Start(); err != nil {
			return err
		}
		ctx.Sleep(time.Duration(ctx.Job.Position) * time.Second)
		if ctx.Job.Position > 1 && len(ctx.Job.Nodes) > 0 {
			if err := n.Join(ctx.Job.Nodes[0]); err != nil {
				ctx.Log.Printf("pastry join failed: %v", err)
			}
		}
		n.StartMaintenance()
		if p.LookupsPerMin > 0 {
			ctx.Periodic(time.Minute/time.Duration(p.LookupsPerMin), func() {
				key := pastry.ID(ctx.Rand().Uint64())
				if res, err := n.Route(key); err == nil {
					ctx.Log.Printf("route %s -> %s in %d hops (%s)", key, res.Root, res.Hops, res.RTT)
				}
			})
		}
		runUntilKilled(ctx)
		n.Stop()
		return nil
	}), nil
}

// CyclonParams configures the "cyclon" application. ShuffleEvery is
// wire-encoded as nanoseconds, like every duration in job parameters.
type CyclonParams struct {
	ViewSize     int   `json:"view_size"`
	ShuffleLen   int   `json:"shuffle_len"`
	ShuffleEvery int64 `json:"shuffle_every"`
}

// Cyclon builds a cyclon.Config from params.
func (p CyclonParams) Config() cyclon.Config {
	cfg := cyclon.DefaultConfig()
	if p.ViewSize > 0 {
		cfg.ViewSize = p.ViewSize
	}
	if p.ShuffleLen > 0 {
		cfg.ShuffleLen = p.ShuffleLen
	}
	if p.ShuffleEvery > 0 {
		cfg.ShuffleEvery = time.Duration(p.ShuffleEvery)
	}
	return cfg
}

func cyclonFactory(params json.RawMessage) (core.App, error) {
	var p CyclonParams
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("cyclon app: %w", err)
		}
	}
	return core.AppFunc(func(ctx *core.AppContext) error {
		n := cyclon.New(ctx, p.Config())
		if err := n.Start(ctx.Job.Nodes); err != nil {
			return err
		}
		runUntilKilled(ctx)
		n.Stop()
		return nil
	}), nil
}

// EpidemicParams configures the "epidemic" application.
type EpidemicParams struct {
	Fanout    int  `json:"fanout"`
	Originate bool `json:"originate"` // position-1 instance broadcasts
}

func epidemicFactory(params json.RawMessage) (core.App, error) {
	var p EpidemicParams
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("epidemic app: %w", err)
		}
	}
	return core.AppFunc(func(ctx *core.AppContext) error {
		cfg := epidemic.DefaultConfig()
		if p.Fanout > 0 {
			cfg.Fanout = p.Fanout
		}
		n := epidemic.New(ctx, cfg, ctx.Job.Nodes)
		if err := n.Start(); err != nil {
			return err
		}
		if p.Originate && ctx.Job.Position == 1 {
			ctx.After(10*time.Second, func() {
				n.Broadcast("rumor-1", []byte("hello from the rendez-vous"))
			})
		}
		runUntilKilled(ctx)
		n.Stop()
		return nil
	}), nil
}

// BitTorrentParams configures the "bittorrent" application: position 1
// runs the tracker, position 2 the initial seed, everyone else leeches.
type BitTorrentParams struct {
	Size      int `json:"size"`
	PieceSize int `json:"piece_size"`
}

func bittorrentFactory(params json.RawMessage) (core.App, error) {
	var p BitTorrentParams
	if len(params) > 0 {
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bittorrent app: %w", err)
		}
	}
	if p.Size <= 0 {
		p.Size = 4 << 20
	}
	if p.PieceSize <= 0 {
		p.PieceSize = 64 << 10
	}
	return core.AppFunc(func(ctx *core.AppContext) error {
		torrent := bittorrent.Torrent{Name: ctx.Job.JobID, Size: p.Size, PieceSize: p.PieceSize}
		if ctx.Job.Position == 1 {
			tr := bittorrent.NewTracker(ctx)
			if err := tr.Start(); err != nil {
				return err
			}
			runUntilKilled(ctx)
			return nil
		}
		if len(ctx.Job.Nodes) == 0 {
			return fmt.Errorf("bittorrent app: no tracker address")
		}
		peer := bittorrent.NewPeer(ctx, torrent, ctx.Job.Nodes[0], ctx.Job.Position == 2, bittorrent.DefaultConfig())
		if err := peer.Start(); err != nil {
			return err
		}
		for !ctx.Killed() {
			ctx.Sleep(5 * time.Second)
			if peer.Complete() {
				ctx.Log.Printf("download complete (%d pieces)", peer.Pieces())
				break
			}
		}
		for !ctx.Killed() { // keep seeding
			ctx.Sleep(10 * time.Second)
		}
		peer.Stop()
		return nil
	}), nil
}
