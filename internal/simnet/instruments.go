package simnet

import (
	"github.com/splaykit/splay/internal/metrics"
)

// Instruments is the simulated network's optional metric set for the
// observability plane, mirroring Stats as live series plus a gauge of
// bytes scheduled but not yet delivered. The zero value disables
// everything (nil instruments are no-ops), and increments touch only
// memory, so attaching instruments never perturbs the event schedule.
type Instruments struct {
	StreamMsgs    *metrics.Counter
	StreamBytes   *metrics.Counter
	Datagrams     *metrics.Counter
	DroppedDgrams *metrics.Counter
	Dials         *metrics.Counter
	RefusedDials  *metrics.Counter
	Deliveries    *metrics.Counter // scheduled deliveries fired (data, EOF, datagram)
	QueuedBytes   *metrics.Gauge   // payload bytes in flight through the fluid model
}

// NewInstruments registers the network's canonical series on reg
// ("simnet." prefix). A nil registry yields the zero (disabled) set.
func NewInstruments(reg *metrics.Registry) Instruments {
	return Instruments{
		StreamMsgs:    reg.Counter("simnet.stream_msgs"),
		StreamBytes:   reg.Counter("simnet.stream_bytes"),
		Datagrams:     reg.Counter("simnet.datagrams"),
		DroppedDgrams: reg.Counter("simnet.dropped_dgrams"),
		Dials:         reg.Counter("simnet.dials"),
		RefusedDials:  reg.Counter("simnet.refused_dials"),
		Deliveries:    reg.Counter("simnet.deliveries"),
		QueuedBytes:   reg.Gauge("simnet.queued_bytes"),
	}
}

// SetInstruments attaches instruments to the network.
func (nw *Network) SetInstruments(ins Instruments) { nw.ins = ins }
