// Package simnet implements SPLAY's simulated network: a virtual packet
// network running in virtual time on the discrete-event kernel.
//
// The network hosts a fixed population of hosts named "n0", "n1", …. A
// pluggable LinkModel supplies pairwise one-way delays, datagram loss
// probabilities and per-host access bandwidth (internal/topology provides
// ModelNet-style transit-stub and PlanetLab models). Transfers use a fluid,
// store-and-forward model: each write is serialized through the sender's
// uplink queue and the receiver's downlink queue, giving correct saturation
// throughput and per-block "steps" without packet-level cost.
//
// An optional processing-delay hook charges per-message CPU cost at the
// receiver; internal/hostmodel uses it to reproduce the paper's
// runtime-scalability experiments (Figs. 7 and 8).
//
// A network runs either on a single kernel (New) or partitioned across the
// sub-kernels of a sim.ParKernel (NewPartitioned): hosts are sharded
// deterministically by ID, intra-partition traffic keeps the pooled
// fast path unchanged, and cross-partition traffic rides per-source queues
// drained at the ParKernel's conservative lookahead barriers — the model's
// minimum link delay is the lookahead window. Host state (uplink/downlink
// queues, pipes, sockets) is only ever touched by the partition that owns
// the host: cross-partition sends split the fluid model in two, the sender
// charging its uplink and the receiver charging its downlink when the
// message arrives.
package simnet

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
	"unsafe"

	"github.com/splaykit/splay/internal/arena"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

// LinkModel supplies link characteristics between hosts. Implementations
// must be deterministic functions of their inputs.
type LinkModel interface {
	// Delay returns the one-way propagation delay from host a to host b.
	Delay(a, b int) time.Duration
	// Loss returns the probability in [0,1] that a datagram from a to b is
	// dropped. Stream transfers are reliable regardless of Loss.
	Loss(a, b int) float64
	// UplinkBps and DownlinkBps return access bandwidth in bytes per
	// second; 0 means unlimited.
	UplinkBps(host int) float64
	DownlinkBps(host int) float64
}

// MinDelayModel is implemented by link models that can state a positive
// lower bound on the one-way delay between any two *distinct* hosts
// (self-delay may be zero — a host never crosses a kernel partition to
// reach itself). Partitioned networks require it: the bound is the
// conservative lookahead window, inside which partitions provably cannot
// influence each other.
type MinDelayModel interface {
	MinDelay() time.Duration
}

// Symmetric is a trivial LinkModel: constant delay and bandwidth between
// every pair, no loss. Useful for tests and local-cluster experiments.
type Symmetric struct {
	RTT time.Duration // round-trip time between any two hosts
	Bps float64       // per-host access bandwidth, bytes/sec (0 = unlimited)
}

// Delay returns half the configured RTT.
func (s Symmetric) Delay(a, b int) time.Duration { return s.RTT / 2 }

// MinDelay returns the one-way delay, the partitioning lookahead bound.
func (s Symmetric) MinDelay() time.Duration { return s.RTT / 2 }

// Loss always returns 0.
func (s Symmetric) Loss(a, b int) float64 { return 0 }

// UplinkBps returns the configured access bandwidth.
func (s Symmetric) UplinkBps(host int) float64 { return s.Bps }

// DownlinkBps returns the configured access bandwidth.
func (s Symmetric) DownlinkBps(host int) float64 { return s.Bps }

// ProcDelayFunc returns extra processing latency charged when a host
// receives size bytes of application data. It runs at delivery time.
type ProcDelayFunc func(host int, size int) time.Duration

// netPart is the per-partition slice of network state. Everything a message
// hot path touches — kernel, rng, delivery and payload pools, connection
// arenas, stats — lives here, owned exclusively by the partition's worker,
// so partitions never contend and never race. A single-kernel network is
// simply a network with one partition.
type netPart struct {
	k       *sim.Kernel
	rng     *rand.Rand
	freeDlv *delivery // pooled scheduled messages (see delivery.go)
	freeBuf [][]byte  // pooled payload buffers (see getBuf/putBuf)
	connSeq int       // conn creation stamp; see newConnPair for uniqueness
	conns   *arena.Arena[conn]
	pipes   *arena.Arena[pipe]
	stats   Stats

	_ [64]byte // keep neighbouring partitions off this cache line
}

func (pt *netPart) init(k *sim.Kernel, seed int64) {
	pt.k = k
	pt.rng = rand.New(rand.NewSource(seed))
	pt.conns = arena.New[conn](256)
	pt.pipes = arena.New[pipe](256)
}

// Network is a simulated network of hosts.
type Network struct {
	pk     *sim.ParKernel // nil on single-kernel networks
	model  LinkModel
	parts  []netPart
	slab   []Host  // all host state, one dense slab
	hosts  []*Host // stable pointers into slab
	proc   ProcDelayFunc
	silent bool // dead hosts blackhole instead of refusing

	// Fault-plane state, driven by the scenario layer's actuators (see
	// internal/faults). All zero when no fault plan is active: every hook
	// below nil-checks before doing anything, so an empty plan adds no
	// kernel events and changes no rng draws — the schedule-neutrality
	// invariant the simulation goldens pin. Fault injection requires a
	// single-partition network (see assertUnpartitioned).
	partition []bool        // partition side by host id; nil = no partition
	degHosts  []bool        // degraded hosts; nil while degraded = all hosts
	degExtra  time.Duration // added one-way delay on degraded links
	degLoss   float64       // added datagram loss on degraded links
	degraded  bool          // Degrade active (degExtra/degLoss may be 0)

	ins Instruments
}

// getBuf returns a payload buffer of length n from the partition's free
// list, growing a recycled buffer when needed. Payload copies are the
// one per-message allocation the delivery fast path cannot avoid — every
// stream write and datagram copies its bytes so the sender may reuse its
// slice — so the copies ride pooled buffers instead: recycled when the
// reader fully consumes a segment or a delivery is dropped (dead port,
// frozen pipe). See DESIGN.md for the ownership rules. Cross-partition
// payloads drain into the receiver's pool; flows balance out.
func (pt *netPart) getBuf(n int) []byte {
	if l := len(pt.freeBuf); l > 0 {
		b := pt.freeBuf[l-1]
		pt.freeBuf[l-1] = nil
		pt.freeBuf = pt.freeBuf[:l-1]
		if cap(b) < n {
			return make([]byte, n)
		}
		return b[:n]
	}
	return make([]byte, n)
}

// putBuf recycles a payload buffer. The caller must be the buffer's sole
// owner: segments go back exactly once, when consumed or dropped.
func (pt *netPart) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	pt.freeBuf = append(pt.freeBuf, b)
}

// Stats aggregates network-level counters, useful in tests and experiment
// reports.
type Stats struct {
	StreamBytes   uint64 // application bytes accepted by stream writes
	StreamMsgs    uint64 // stream write calls
	Datagrams     uint64 // datagrams sent
	DroppedDgrams uint64 // datagrams lost
	Dials         uint64
	RefusedDials  uint64
}

func (s *Stats) add(o *Stats) {
	s.StreamBytes += o.StreamBytes
	s.StreamMsgs += o.StreamMsgs
	s.Datagrams += o.Datagrams
	s.DroppedDgrams += o.DroppedDgrams
	s.Dials += o.Dials
	s.RefusedDials += o.RefusedDials
}

func newNetwork(model LinkModel, n int) *Network {
	nw := &Network{
		model: model,
		slab:  make([]Host, n),
		hosts: make([]*Host, n),
	}
	for i := range nw.slab {
		h := &nw.slab[i]
		h.nw = nw
		h.id = i
		h.nextEphem = 40000
		nw.hosts[i] = h
	}
	return nw
}

// New creates a network of n hosts over the kernel using the given link
// model. The seed makes datagram loss and ephemeral choices deterministic.
func New(k *sim.Kernel, model LinkModel, n int, seed int64) *Network {
	nw := newNetwork(model, n)
	nw.parts = make([]netPart, 1)
	nw.parts[0].init(k, seed)
	return nw
}

// partSeed derives partition p's rng seed. Partition 0 gets the plain seed,
// so a one-partition network draws the exact sequence New's networks always
// drew.
func partSeed(seed int64, p int) int64 {
	const golden = int64(-0x61C8864680B583EB) // 2^64 / φ, as a signed word
	return seed + int64(p)*golden
}

// NewPartitioned creates a network of n hosts sharded across the
// sub-kernels of pk: host i lives on partition i mod pk.Parts(), and all of
// its state is owned by that partition. With more than one partition the
// link model must implement MinDelayModel with a positive bound no smaller
// than pk's lookahead — conservative synchronization is only sound when no
// message can cross partitions faster than the lookahead window.
//
// Fault injection (Partition, Degrade, SetDown) is not supported on
// multi-partition networks and panics.
func NewPartitioned(pk *sim.ParKernel, model LinkModel, n int, seed int64) (*Network, error) {
	p := pk.Parts()
	if p > 1 {
		md, ok := model.(MinDelayModel)
		if !ok {
			return nil, fmt.Errorf("simnet: link model %T does not expose MinDelay; partitioned networks need a positive minimum link delay", model)
		}
		if md.MinDelay() <= 0 {
			return nil, fmt.Errorf("simnet: link model %T has MinDelay %s; partitioned networks need a positive minimum link delay", model, md.MinDelay())
		}
		if pk.Lookahead() <= 0 || pk.Lookahead() > md.MinDelay() {
			return nil, fmt.Errorf("simnet: kernel lookahead %s must be in (0, %s], the model's minimum link delay", pk.Lookahead(), md.MinDelay())
		}
	}
	nw := newNetwork(model, n)
	nw.pk = pk
	nw.parts = make([]netPart, p)
	for i := range nw.parts {
		nw.parts[i].init(pk.Sub(i), partSeed(seed, i))
	}
	for i := range nw.slab {
		nw.slab[i].part = i % p
	}
	return nw, nil
}

// Kernel returns the kernel driving this network. On a partitioned network
// it returns partition 0's sub-kernel; drive the simulation through the
// ParKernel instead.
func (nw *Network) Kernel() *sim.Kernel { return nw.parts[0].k }

// Par returns the ParKernel on a partitioned network, nil otherwise.
func (nw *Network) Par() *sim.ParKernel { return nw.pk }

// Partitions returns the number of kernel partitions (1 on single-kernel
// networks).
func (nw *Network) Partitions() int { return len(nw.parts) }

// Stats returns the network counters, aggregated across partitions.
func (nw *Network) Stats() Stats {
	var s Stats
	for i := range nw.parts {
		s.add(&nw.parts[i].stats)
	}
	return s
}

// NumHosts returns the host population size.
func (nw *Network) NumHosts() int { return len(nw.hosts) }

// SetProcDelay installs the receiver-side processing delay hook (may be
// nil to disable).
func (nw *Network) SetProcDelay(f ProcDelayFunc) { nw.proc = f }

// SetSilentFailures selects how dead hosts fail. By default a down host
// refuses connections immediately (a killed process on a live machine).
// With silent failures, a down host blackholes traffic: dials and reads
// block until the caller's timeout — the behaviour of a severed WAN link
// or a powered-off machine, which Fig. 10's massive-failure experiment
// models.
func (nw *Network) SetSilentFailures(on bool) { nw.silent = on }

// assertUnpartitioned guards the fault-plane mutators: they reach across
// host state in ways only a single event loop can serialize.
func (nw *Network) assertUnpartitioned(op string) {
	if len(nw.parts) > 1 {
		panic("simnet: " + op + " is not supported on a partitioned network")
	}
}

// FootprintBytes reports the long-lived heap the network layer holds —
// the host slab, the connection and pipe arenas, and the payload buffer
// pools — for the memory plane's accountant. It only reads sizes, so
// sampling it never perturbs a schedule.
func (nw *Network) FootprintBytes() uint64 {
	b := uint64(len(nw.slab)) * uint64(unsafe.Sizeof(Host{}))
	for i := range nw.parts {
		pt := &nw.parts[i]
		b += pt.conns.Bytes() + pt.pipes.Bytes()
		for _, buf := range pt.freeBuf {
			b += uint64(cap(buf))
		}
	}
	return b
}

// Host returns host i.
func (nw *Network) Host(i int) *Host { return nw.hosts[i] }

// Node returns host i's transport.Node view.
func (nw *Network) Node(i int) transport.Node { return nw.hosts[i] }

// cross reports whether traffic between a and b crosses kernel partitions.
func (nw *Network) cross(a, b *Host) bool { return a.part != b.part }

// HostName returns the canonical name of host i.
func HostName(i int) string { return "n" + strconv.Itoa(i) }

// HostID parses a canonical host name back to its index.
func HostID(name string) (int, error) {
	if !strings.HasPrefix(name, "n") {
		return 0, fmt.Errorf("simnet: invalid host name %q", name)
	}
	id, err := strconv.Atoi(name[1:])
	if err != nil || id < 0 {
		return 0, fmt.Errorf("simnet: invalid host name %q", name)
	}
	return id, nil
}

func (nw *Network) hostByName(name string) (*Host, error) {
	id, err := HostID(name)
	if err != nil {
		return nil, err
	}
	if id >= len(nw.hosts) {
		return nil, fmt.Errorf("simnet: host %q out of range (have %d hosts)", name, len(nw.hosts))
	}
	return nw.hosts[id], nil
}

// delay returns the one-way delay between two hosts with a defensive floor
// of zero, plus any active link degradation.
func (nw *Network) delay(a, b int) time.Duration {
	d := nw.model.Delay(a, b)
	if d < 0 {
		d = 0
	}
	if nw.degraded && nw.degExtra > 0 && nw.degApplies(a, b) {
		d += nw.degExtra
	}
	return d
}

// Host is one machine in the simulated network. Host implements
// transport.Node, so application code receives a *Host as its network
// stack. Hosts live in one dense slab per network, and their socket maps
// are nil until first use: a 100k-host population costs a few MB, not a
// few hundred.
type Host struct {
	nw   *Network
	id   int
	part int // owning kernel partition; 0 on single-kernel networks

	// Sockets are short slices, not maps: a host owns a handful of
	// listeners and packet conns and around a dozen stream conns, and at
	// memory-plane populations per-host map headers and buckets dominate
	// the entries they hold. All scans are linear over those few items.
	listeners []*listener
	packets   []*packetConn
	conns     []*conn
	nextEphem int

	upFree   time.Time // uplink busy until
	downFree time.Time // downlink busy until

	down bool // machine failed: sockets reset, dials refused
	gen  int  // incremented at every Down/Up transition
}

// ID returns the host's index in the network.
func (h *Host) ID() int { return h.id }

// Part returns the kernel partition that owns this host.
func (h *Host) Part() int { return h.part }

// Host returns the host's canonical name ("n<i>").
func (h *Host) Host() string { return HostName(h.id) }

// kern returns the kernel partition-owning this host's state: the network's
// only kernel on single-kernel networks.
func (h *Host) kern() *sim.Kernel { return h.nw.parts[h.part].k }

// np returns this host's partition state.
func (h *Host) np() *netPart { return &h.nw.parts[h.part] }

func (h *Host) addConn(c *conn) {
	h.conns = append(h.conns, c)
}

// removeConn drops c from the host's table (no-op if absent).
func (h *Host) removeConn(c *conn) {
	for i := range h.conns {
		if h.conns[i] == c {
			last := len(h.conns) - 1
			copy(h.conns[i:], h.conns[i+1:])
			h.conns[last] = nil
			h.conns = h.conns[:last]
			return
		}
	}
}

// listenerOn returns the listener bound to port, or nil.
func (h *Host) listenerOn(port int) *listener {
	for _, l := range h.listeners {
		if l.port == port {
			return l
		}
	}
	return nil
}

// removeListener drops l from the host's table (no-op if absent).
func (h *Host) removeListener(l *listener) {
	for i := range h.listeners {
		if h.listeners[i] == l {
			last := len(h.listeners) - 1
			copy(h.listeners[i:], h.listeners[i+1:])
			h.listeners[last] = nil
			h.listeners = h.listeners[:last]
			return
		}
	}
}

// packetOn returns the packet socket bound to port, or nil.
func (h *Host) packetOn(port int) *packetConn {
	for _, p := range h.packets {
		if p.port == port {
			return p
		}
	}
	return nil
}

// removePacket drops p from the host's table (no-op if absent).
func (h *Host) removePacket(p *packetConn) {
	for i := range h.packets {
		if h.packets[i] == p {
			last := len(h.packets) - 1
			copy(h.packets[i:], h.packets[i+1:])
			h.packets[last] = nil
			h.packets = h.packets[:last]
			return
		}
	}
}

// Down reports whether the machine is currently failed.
func (h *Host) Down() bool { return h.down }

// SetDown fails or revives the machine. Failing a host resets every open
// connection (both endpoints observe errors), closes its listeners and
// packet sockets, and refuses future dials until revived.
func (h *Host) SetDown(down bool) {
	h.nw.assertUnpartitioned("SetDown")
	if h.down == down {
		return
	}
	h.down = down
	h.gen++
	if !down {
		return
	}
	for _, l := range h.listeners {
		l.close()
	}
	for _, p := range h.packets {
		p.close()
	}
	// Detach the table first: reset/freeze call removeConn, which must
	// not shift the backing array out from under this iteration.
	conns := h.conns
	h.conns = nil
	for _, c := range conns {
		if h.nw.silent {
			c.freeze()
		} else {
			c.reset()
		}
	}
	h.listeners = nil
	h.packets = nil
}

// ephemeralPort returns a free port in [40000, 65000]. It scans the range at
// most once: when every port is occupied it reports an error instead of
// spinning forever.
func (h *Host) ephemeralPort() (int, error) {
	const lo, hi = 40000, 65000
	for tries := 0; tries <= hi-lo; tries++ {
		p := h.nextEphem
		h.nextEphem++
		if h.nextEphem > hi {
			h.nextEphem = lo
		}
		if h.listenerOn(p) != nil {
			continue
		}
		if h.packetOn(p) != nil {
			continue
		}
		return p, nil
	}
	return 0, fmt.Errorf("simnet: %s: no free ephemeral ports in [%d, %d]", h.Host(), lo, hi)
}

// Listen implements transport.Node.
func (h *Host) Listen(port int) (transport.Listener, error) {
	if h.down {
		return nil, transport.ErrClosed
	}
	if port == 0 {
		p, err := h.ephemeralPort()
		if err != nil {
			return nil, err
		}
		port = p
	}
	if h.listenerOn(port) != nil {
		return nil, fmt.Errorf("simnet: %s port %d: address already in use", h.Host(), port)
	}
	l := &listener{host: h, port: port}
	h.listeners = append(h.listeners, l)
	return l, nil
}

// ListenPacket implements transport.Node.
func (h *Host) ListenPacket(port int) (transport.PacketConn, error) {
	if h.down {
		return nil, transport.ErrClosed
	}
	if port == 0 {
		p, err := h.ephemeralPort()
		if err != nil {
			return nil, err
		}
		port = p
	}
	if h.packetOn(port) != nil {
		return nil, fmt.Errorf("simnet: %s udp port %d: address already in use", h.Host(), port)
	}
	p := &packetConn{host: h, port: port}
	h.packets = append(h.packets, p)
	return p, nil
}

// DefaultDialTimeout applies when Dial is called with timeout 0.
const DefaultDialTimeout = 60 * time.Second

// Dial implements transport.Node. The handshake costs one round trip; a
// missing listener or failed host costs the same round trip and returns
// ErrRefused.
//
// Cross-partition dials run the same protocol, split along ownership lines:
// the SYN is posted to the acceptor's partition (it reads the listener
// table and creates the pair), the verdict is posted back to the dialer's
// partition (it registers the local endpoint and wakes the waiter).
func (h *Host) Dial(to transport.Addr, timeout time.Duration) (transport.Conn, error) {
	k := h.kern()
	if h.down {
		return nil, transport.ErrClosed
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	remote, err := h.nw.hostByName(to.Host)
	if err != nil {
		return nil, err
	}
	h.np().stats.Dials++
	h.nw.ins.Dials.Inc()
	port, err := h.ephemeralPort()
	if err != nil {
		return nil, err
	}
	local := transport.Addr{Host: h.Host(), Port: port}

	w := k.NewWaiter()
	// The verdict events below may fire after the dialer has timed out and
	// its (pooled) waiter been recycled; the generation-stamped ref makes
	// those late wakes safe no-ops.
	ref := w.Ref()
	w.WakeAfter(timeout, transport.ErrTimeout)
	fwd := h.nw.delay(h.id, remote.id)
	rev := h.nw.delay(remote.id, h.id)
	gen := h.gen
	crossing := h.nw.cross(h, remote)

	// SYN arrives at the remote after the forward delay; the verdict
	// (connection or refusal) travels back after the reverse delay. The SYN
	// body runs on the remote's partition; every verdict body runs on the
	// dialer's.
	syn := func() {
		rk := remote.kern()
		verdict := func(fn func()) {
			if crossing {
				h.nw.pk.Post(remote.part, h.part, int64(rk.Now().Add(rev).Sub(sim.Epoch)), fn)
			} else {
				rk.AfterFunc(rev, fn)
			}
		}
		if remote.down && h.nw.silent {
			return // blackholed: the dialer's timeout fires
		}
		if h.nw.cut(h.id, remote.id) {
			return // partitioned: same blackhole, the dialer times out
		}
		l := remote.listenerOn(to.Port)
		if l == nil || remote.down {
			remote.np().stats.RefusedDials++
			h.nw.ins.RefusedDials.Inc()
			verdict(func() { ref.Wake(transport.ErrRefused) })
			return
		}
		cl, cr := newConnPair(h, local, remote, to)
		l.deliver(cr)
		verdict(func() {
			if crossing {
				// The dialer-side endpoint joins its host's table on its
				// own partition, symmetric with newConnPair registering cr.
				h.addConn(cl)
			}
			if h.down || h.gen != gen {
				cl.reset()
				return
			}
			if !ref.Wake(cl) {
				// Dialer already timed out; tear down the orphan.
				cl.Close()
			}
		})
	}
	if crossing {
		h.nw.pk.Post(h.part, remote.part, int64(k.Now().Add(fwd).Sub(sim.Epoch)), syn)
	} else {
		k.AfterFunc(fwd, syn)
	}

	switch v := w.Wait().(type) {
	case *conn:
		return v, nil
	case error:
		return nil, v
	default:
		return nil, transport.ErrClosed
	}
}

// upTimes charges size bytes to a's uplink queue starting now and returns
// the instant the uplink releases the message. Sender-side half of the
// fluid model; always runs on a's partition.
func (nw *Network) upTimes(a *Host, size int) (senderFree time.Time) {
	now := a.kern().Now()
	up := nw.model.UplinkBps(a.id)
	txStart := now
	if txStart.Before(a.upFree) {
		txStart = a.upFree
	}
	txDur := time.Duration(0)
	if up > 0 {
		txDur = time.Duration(float64(size) / up * float64(time.Second))
	}
	senderFree = txStart.Add(txDur)
	a.upFree = senderFree
	return senderFree
}

// recvTimes charges size bytes to b's downlink queue for a message arriving
// at arrive and returns the delivery instant, including any processing
// delay. Receiver-side half of the fluid model; always runs on b's
// partition (at arrival time, for cross-partition traffic).
func (nw *Network) recvTimes(b *Host, arrive time.Time, size int) (delivered time.Time) {
	down := nw.model.DownlinkBps(b.id)
	rxStart := arrive
	if rxStart.Before(b.downFree) {
		rxStart = b.downFree
	}
	rxDur := time.Duration(0)
	if down > 0 {
		rxDur = time.Duration(float64(size) / down * float64(time.Second))
	}
	delivered = rxStart.Add(rxDur)
	b.downFree = delivered
	if nw.proc != nil {
		delivered = delivered.Add(nw.proc(b.id, size))
	}
	return delivered
}

// sendTimes computes the fluid-model schedule for moving size bytes from
// host a to host b starting now: the instant the sender's uplink releases
// the message and the instant the payload is fully delivered at b. Both
// hosts must live on the same partition; cross-partition senders use
// upTimes and let the destination partition run recvTimes on arrival.
func (nw *Network) sendTimes(a, b *Host, size int) (senderFree, delivered time.Time) {
	senderFree = nw.upTimes(a, size)
	arrive := senderFree.Add(nw.delay(a.id, b.id))
	delivered = nw.recvTimes(b, arrive, size)
	return senderFree, delivered
}
