// Package simnet implements SPLAY's simulated network: a virtual packet
// network running in virtual time on the discrete-event kernel.
//
// The network hosts a fixed population of hosts named "n0", "n1", …. A
// pluggable LinkModel supplies pairwise one-way delays, datagram loss
// probabilities and per-host access bandwidth (internal/topology provides
// ModelNet-style transit-stub and PlanetLab models). Transfers use a fluid,
// store-and-forward model: each write is serialized through the sender's
// uplink queue and the receiver's downlink queue, giving correct saturation
// throughput and per-block "steps" without packet-level cost.
//
// An optional processing-delay hook charges per-message CPU cost at the
// receiver; internal/hostmodel uses it to reproduce the paper's
// runtime-scalability experiments (Figs. 7 and 8).
package simnet

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

// LinkModel supplies link characteristics between hosts. Implementations
// must be deterministic functions of their inputs.
type LinkModel interface {
	// Delay returns the one-way propagation delay from host a to host b.
	Delay(a, b int) time.Duration
	// Loss returns the probability in [0,1] that a datagram from a to b is
	// dropped. Stream transfers are reliable regardless of Loss.
	Loss(a, b int) float64
	// UplinkBps and DownlinkBps return access bandwidth in bytes per
	// second; 0 means unlimited.
	UplinkBps(host int) float64
	DownlinkBps(host int) float64
}

// Symmetric is a trivial LinkModel: constant delay and bandwidth between
// every pair, no loss. Useful for tests and local-cluster experiments.
type Symmetric struct {
	RTT time.Duration // round-trip time between any two hosts
	Bps float64       // per-host access bandwidth, bytes/sec (0 = unlimited)
}

// Delay returns half the configured RTT.
func (s Symmetric) Delay(a, b int) time.Duration { return s.RTT / 2 }

// Loss always returns 0.
func (s Symmetric) Loss(a, b int) float64 { return 0 }

// UplinkBps returns the configured access bandwidth.
func (s Symmetric) UplinkBps(host int) float64 { return s.Bps }

// DownlinkBps returns the configured access bandwidth.
func (s Symmetric) DownlinkBps(host int) float64 { return s.Bps }

// ProcDelayFunc returns extra processing latency charged when a host
// receives size bytes of application data. It runs at delivery time.
type ProcDelayFunc func(host int, size int) time.Duration

// Network is a simulated network of hosts.
type Network struct {
	kernel *sim.Kernel
	model  LinkModel
	rng    *rand.Rand
	hosts  []*Host
	proc   ProcDelayFunc
	silent bool // dead hosts blackhole instead of refusing

	freeDlv *delivery // pooled scheduled messages (see delivery.go)
	freeBuf [][]byte  // pooled payload buffers (see getBuf/putBuf)

	// Fault-plane state, driven by the scenario layer's actuators (see
	// internal/faults). All zero when no fault plan is active: every hook
	// below nil-checks before doing anything, so an empty plan adds no
	// kernel events and changes no rng draws — the schedule-neutrality
	// invariant the simulation goldens pin.
	partition []bool        // partition side by host id; nil = no partition
	degHosts  []bool        // degraded hosts; nil while degraded = all hosts
	degExtra  time.Duration // added one-way delay on degraded links
	degLoss   float64       // added datagram loss on degraded links
	degraded  bool          // Degrade active (degExtra/degLoss may be 0)
	connSeq   int           // conn creation stamp for deterministic resets

	stats Stats
	ins   Instruments
}

// getBuf returns a payload buffer of length n from the network's free
// list, growing a recycled buffer when needed. Payload copies are the
// one per-message allocation the delivery fast path cannot avoid — every
// stream write and datagram copies its bytes so the sender may reuse its
// slice — so the copies ride pooled buffers instead: recycled when the
// reader fully consumes a segment or a delivery is dropped (dead port,
// frozen pipe). See DESIGN.md for the ownership rules.
func (nw *Network) getBuf(n int) []byte {
	if l := len(nw.freeBuf); l > 0 {
		b := nw.freeBuf[l-1]
		nw.freeBuf[l-1] = nil
		nw.freeBuf = nw.freeBuf[:l-1]
		if cap(b) < n {
			return make([]byte, n)
		}
		return b[:n]
	}
	return make([]byte, n)
}

// putBuf recycles a payload buffer. The caller must be the buffer's sole
// owner: segments go back exactly once, when consumed or dropped.
func (nw *Network) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	nw.freeBuf = append(nw.freeBuf, b)
}

// Stats aggregates network-level counters, useful in tests and experiment
// reports.
type Stats struct {
	StreamBytes   uint64 // application bytes accepted by stream writes
	StreamMsgs    uint64 // stream write calls
	Datagrams     uint64 // datagrams sent
	DroppedDgrams uint64 // datagrams lost
	Dials         uint64
	RefusedDials  uint64
}

// New creates a network of n hosts over the kernel using the given link
// model. The seed makes datagram loss and ephemeral choices deterministic.
func New(k *sim.Kernel, model LinkModel, n int, seed int64) *Network {
	nw := &Network{
		kernel: k,
		model:  model,
		rng:    rand.New(rand.NewSource(seed)),
		hosts:  make([]*Host, n),
	}
	for i := range nw.hosts {
		nw.hosts[i] = newHost(nw, i)
	}
	return nw
}

// Kernel returns the kernel driving this network.
func (nw *Network) Kernel() *sim.Kernel { return nw.kernel }

// Stats returns a copy of the network counters.
func (nw *Network) Stats() Stats { return nw.stats }

// NumHosts returns the host population size.
func (nw *Network) NumHosts() int { return len(nw.hosts) }

// SetProcDelay installs the receiver-side processing delay hook (may be
// nil to disable).
func (nw *Network) SetProcDelay(f ProcDelayFunc) { nw.proc = f }

// SetSilentFailures selects how dead hosts fail. By default a down host
// refuses connections immediately (a killed process on a live machine).
// With silent failures, a down host blackholes traffic: dials and reads
// block until the caller's timeout — the behaviour of a severed WAN link
// or a powered-off machine, which Fig. 10's massive-failure experiment
// models.
func (nw *Network) SetSilentFailures(on bool) { nw.silent = on }

// Host returns host i.
func (nw *Network) Host(i int) *Host { return nw.hosts[i] }

// Node returns host i's transport.Node view.
func (nw *Network) Node(i int) transport.Node { return nw.hosts[i] }

// HostName returns the canonical name of host i.
func HostName(i int) string { return "n" + strconv.Itoa(i) }

// HostID parses a canonical host name back to its index.
func HostID(name string) (int, error) {
	if !strings.HasPrefix(name, "n") {
		return 0, fmt.Errorf("simnet: invalid host name %q", name)
	}
	id, err := strconv.Atoi(name[1:])
	if err != nil || id < 0 {
		return 0, fmt.Errorf("simnet: invalid host name %q", name)
	}
	return id, nil
}

func (nw *Network) hostByName(name string) (*Host, error) {
	id, err := HostID(name)
	if err != nil {
		return nil, err
	}
	if id >= len(nw.hosts) {
		return nil, fmt.Errorf("simnet: host %q out of range (have %d hosts)", name, len(nw.hosts))
	}
	return nw.hosts[id], nil
}

// delay returns the one-way delay between two hosts with a defensive floor
// of zero, plus any active link degradation.
func (nw *Network) delay(a, b int) time.Duration {
	d := nw.model.Delay(a, b)
	if d < 0 {
		d = 0
	}
	if nw.degraded && nw.degExtra > 0 && nw.degApplies(a, b) {
		d += nw.degExtra
	}
	return d
}

// Host is one machine in the simulated network. Host implements
// transport.Node, so application code receives a *Host as its network
// stack.
type Host struct {
	nw *Network
	id int

	listeners map[int]*listener
	packets   map[int]*packetConn
	conns     map[*conn]struct{}
	nextEphem int

	upFree   time.Time // uplink busy until
	downFree time.Time // downlink busy until

	down bool // machine failed: sockets reset, dials refused
	gen  int  // incremented at every Down/Up transition
}

func newHost(nw *Network, id int) *Host {
	return &Host{
		nw:        nw,
		id:        id,
		listeners: make(map[int]*listener),
		packets:   make(map[int]*packetConn),
		conns:     make(map[*conn]struct{}),
		nextEphem: 40000,
	}
}

// ID returns the host's index in the network.
func (h *Host) ID() int { return h.id }

// Host returns the host's canonical name ("n<i>").
func (h *Host) Host() string { return HostName(h.id) }

// Down reports whether the machine is currently failed.
func (h *Host) Down() bool { return h.down }

// SetDown fails or revives the machine. Failing a host resets every open
// connection (both endpoints observe errors), closes its listeners and
// packet sockets, and refuses future dials until revived.
func (h *Host) SetDown(down bool) {
	if h.down == down {
		return
	}
	h.down = down
	h.gen++
	if !down {
		return
	}
	for _, l := range h.listeners {
		l.close()
	}
	for _, p := range h.packets {
		p.close()
	}
	for c := range h.conns {
		if h.nw.silent {
			c.freeze()
		} else {
			c.reset()
		}
	}
	h.listeners = make(map[int]*listener)
	h.packets = make(map[int]*packetConn)
	h.conns = make(map[*conn]struct{})
}

// ephemeralPort returns a free port in [40000, 65000]. It scans the range at
// most once: when every port is occupied it reports an error instead of
// spinning forever.
func (h *Host) ephemeralPort() (int, error) {
	const lo, hi = 40000, 65000
	for tries := 0; tries <= hi-lo; tries++ {
		p := h.nextEphem
		h.nextEphem++
		if h.nextEphem > hi {
			h.nextEphem = lo
		}
		if _, ok := h.listeners[p]; ok {
			continue
		}
		if _, ok := h.packets[p]; ok {
			continue
		}
		return p, nil
	}
	return 0, fmt.Errorf("simnet: %s: no free ephemeral ports in [%d, %d]", h.Host(), lo, hi)
}

// Listen implements transport.Node.
func (h *Host) Listen(port int) (transport.Listener, error) {
	if h.down {
		return nil, transport.ErrClosed
	}
	if port == 0 {
		p, err := h.ephemeralPort()
		if err != nil {
			return nil, err
		}
		port = p
	}
	if _, ok := h.listeners[port]; ok {
		return nil, fmt.Errorf("simnet: %s port %d: address already in use", h.Host(), port)
	}
	l := &listener{host: h, port: port}
	h.listeners[port] = l
	return l, nil
}

// ListenPacket implements transport.Node.
func (h *Host) ListenPacket(port int) (transport.PacketConn, error) {
	if h.down {
		return nil, transport.ErrClosed
	}
	if port == 0 {
		p, err := h.ephemeralPort()
		if err != nil {
			return nil, err
		}
		port = p
	}
	if _, ok := h.packets[port]; ok {
		return nil, fmt.Errorf("simnet: %s udp port %d: address already in use", h.Host(), port)
	}
	p := &packetConn{host: h, port: port}
	h.packets[port] = p
	return p, nil
}

// DefaultDialTimeout applies when Dial is called with timeout 0.
const DefaultDialTimeout = 60 * time.Second

// Dial implements transport.Node. The handshake costs one round trip; a
// missing listener or failed host costs the same round trip and returns
// ErrRefused.
func (h *Host) Dial(to transport.Addr, timeout time.Duration) (transport.Conn, error) {
	k := h.nw.kernel
	if h.down {
		return nil, transport.ErrClosed
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	remote, err := h.nw.hostByName(to.Host)
	if err != nil {
		return nil, err
	}
	h.nw.stats.Dials++
	h.nw.ins.Dials.Inc()
	port, err := h.ephemeralPort()
	if err != nil {
		return nil, err
	}
	local := transport.Addr{Host: h.Host(), Port: port}

	w := k.NewWaiter()
	// The verdict events below may fire after the dialer has timed out and
	// its (pooled) waiter been recycled; the generation-stamped ref makes
	// those late wakes safe no-ops.
	ref := w.Ref()
	w.WakeAfter(timeout, transport.ErrTimeout)
	fwd := h.nw.delay(h.id, remote.id)
	rev := h.nw.delay(remote.id, h.id)
	gen := h.gen

	// SYN arrives at the remote after the forward delay; the verdict
	// (connection or refusal) travels back after the reverse delay.
	k.AfterFunc(fwd, func() {
		if remote.down && h.nw.silent {
			return // blackholed: the dialer's timeout fires
		}
		if h.nw.cut(h.id, remote.id) {
			return // partitioned: same blackhole, the dialer times out
		}
		l, ok := remote.listeners[to.Port]
		if !ok || remote.down {
			h.nw.stats.RefusedDials++
			h.nw.ins.RefusedDials.Inc()
			k.AfterFunc(rev, func() { ref.Wake(transport.ErrRefused) })
			return
		}
		cl, cr := newConnPair(h, local, remote, to)
		l.deliver(cr)
		k.AfterFunc(rev, func() {
			if h.down || h.gen != gen {
				cl.reset()
				return
			}
			if !ref.Wake(cl) {
				// Dialer already timed out; tear down the orphan.
				cl.Close()
			}
		})
	})

	switch v := w.Wait().(type) {
	case *conn:
		return v, nil
	case error:
		return nil, v
	default:
		return nil, transport.ErrClosed
	}
}

// sendTimes computes the fluid-model schedule for moving size bytes from
// host a to host b starting now: the instant the sender's uplink releases
// the message and the instant the payload is fully delivered at b.
func (nw *Network) sendTimes(a, b *Host, size int) (senderFree, delivered time.Time) {
	k := nw.kernel
	now := k.Now()

	up := nw.model.UplinkBps(a.id)
	txStart := now
	if txStart.Before(a.upFree) {
		txStart = a.upFree
	}
	txDur := time.Duration(0)
	if up > 0 {
		txDur = time.Duration(float64(size) / up * float64(time.Second))
	}
	senderFree = txStart.Add(txDur)
	a.upFree = senderFree

	arrive := senderFree.Add(nw.delay(a.id, b.id))
	down := nw.model.DownlinkBps(b.id)
	rxStart := arrive
	if rxStart.Before(b.downFree) {
		rxStart = b.downFree
	}
	rxDur := time.Duration(0)
	if down > 0 {
		rxDur = time.Duration(float64(size) / down * float64(time.Second))
	}
	delivered = rxStart.Add(rxDur)
	b.downFree = delivered

	if nw.proc != nil {
		delivered = delivered.Add(nw.proc(b.id, size))
	}
	return senderFree, delivered
}
