package simnet

import (
	"errors"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// TestPartitionResetsAndBlackholes checks the three partition effects:
// crossing connections reset, crossing dials time out, crossing
// datagrams vanish — and that HealPartition undoes all three.
func TestPartitionResetsAndBlackholes(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 10 * time.Millisecond})
	var (
		acceptErr error
		dialErr   error
		redialErr error
		dgramOK   bool
	)
	k.Go(func() {
		l, err := nw.Node(1).Listen(80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		_, acceptErr = c.Read(make([]byte, 8))

		p, err := nw.Node(1).ListenPacket(90)
		if err != nil {
			t.Errorf("listen packet: %v", err)
			return
		}
		p.SetReadDeadline(k.Now().Add(5 * time.Second))
		if _, _, err := p.ReadFrom(make([]byte, 64)); err == nil {
			dgramOK = true
		}
	})
	k.Go(func() {
		c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		k.Sleep(100 * time.Millisecond)

		nw.Partition([]bool{false, true})
		if _, err := c.Read(make([]byte, 8)); err == nil {
			t.Error("read on a crossing conn survived the partition")
		}
		_, dialErr = nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 2*time.Second)

		pc, err := nw.Node(0).ListenPacket(0)
		if err != nil {
			t.Errorf("listen packet: %v", err)
			return
		}
		if _, err := pc.WriteTo([]byte("lost"), transport.Addr{Host: "n1", Port: 90}); err != nil {
			t.Errorf("partitioned WriteTo errored: %v", err)
		}

		nw.HealPartition()
		c2, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 2*time.Second)
		redialErr = err
		if err == nil {
			c2.Close()
		}
	})
	k.Run()
	if acceptErr == nil {
		t.Error("server side of the crossing conn observed no error")
	}
	if !errors.Is(dialErr, transport.ErrTimeout) {
		t.Errorf("crossing dial returned %v, want timeout", dialErr)
	}
	if dgramOK {
		t.Error("crossing datagram was delivered")
	}
	if redialErr != nil {
		t.Errorf("dial after heal failed: %v", redialErr)
	}
	if nw.Stats().DroppedDgrams != 1 {
		t.Errorf("DroppedDgrams = %d, want 1", nw.Stats().DroppedDgrams)
	}
}

// TestDegradeAddsLatency checks Degrade slows delivery by exactly the
// configured extra one-way delay.
func TestDegradeAddsLatency(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 10 * time.Millisecond})
	var at time.Duration
	k.Go(func() {
		p, _ := nw.Node(1).ListenPacket(90)
		start := k.Now()
		if _, _, err := p.ReadFrom(make([]byte, 64)); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		at = k.Now().Sub(start)
	})
	k.Go(func() {
		nw.Degrade(nil, 100*time.Millisecond, 0)
		p, _ := nw.Node(0).ListenPacket(0)
		p.WriteTo([]byte("slow"), transport.Addr{Host: "n1", Port: 90})
	})
	k.Run()
	if at != 105*time.Millisecond {
		t.Errorf("degraded datagram arrived after %s, want 105ms (RTT/2 + 100ms)", at)
	}
}

// TestDegradeLossDropsDatagrams checks full degradation loss blackholes
// datagrams without touching streams.
func TestDegradeLossDropsDatagrams(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 10 * time.Millisecond})
	k.Go(func() {
		nw.Degrade(nil, 0, 1.0)
		p, _ := nw.Node(0).ListenPacket(0)
		p.WriteTo([]byte("gone"), transport.Addr{Host: "n1", Port: 90})
		nw.Restore()
		p.WriteTo([]byte("kept"), transport.Addr{Host: "n1", Port: 90})
	})
	var got string
	k.Go(func() {
		p, _ := nw.Node(1).ListenPacket(90)
		buf := make([]byte, 64)
		n, _, err := p.ReadFrom(buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		got = string(buf[:n])
	})
	k.Run()
	if got != "kept" {
		t.Errorf("received %q, want the post-Restore datagram", got)
	}
	if nw.Stats().DroppedDgrams != 1 {
		t.Errorf("DroppedDgrams = %d, want 1", nw.Stats().DroppedDgrams)
	}
}
