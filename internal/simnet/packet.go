package simnet

import (
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

// MaxDatagram is the largest datagram payload the simulated network
// forwards, matching a typical UDP limit.
const MaxDatagram = 64 * 1024

type dgram struct {
	data []byte
	from transport.Addr
}

// packetConn implements transport.PacketConn over the simulated network.
type packetConn struct {
	host     *Host
	port     int
	queue    []dgram
	waiters  []sim.WaiterRef // refs: entries stale after a deadline wake are inert
	closed   bool
	deadline time.Time
}

var _ transport.PacketConn = (*packetConn)(nil)

func (p *packetConn) Addr() transport.Addr {
	return transport.Addr{Host: p.host.Host(), Port: p.port}
}

// SetReadDeadline implements transport.PacketConn.
func (p *packetConn) SetReadDeadline(t time.Time) error {
	p.deadline = t
	return nil
}

// WriteTo implements transport.PacketConn. Datagrams traverse the same
// fluid bandwidth queues as streams but the sender never blocks; loss is
// sampled from the link model.
func (p *packetConn) WriteTo(b []byte, to transport.Addr) (int, error) {
	if p.closed || p.host.down {
		return 0, transport.ErrClosed
	}
	if len(b) > MaxDatagram {
		return 0, fmt.Errorf("simnet: datagram of %d bytes exceeds %d", len(b), MaxDatagram)
	}
	nw := p.host.nw
	remote, err := nw.hostByName(to.Host)
	if err != nil {
		return 0, err
	}
	np := p.host.np()
	np.stats.Datagrams++
	nw.ins.Datagrams.Inc()
	if loss := nw.model.Loss(p.host.id, remote.id); loss > 0 && np.rng.Float64() < loss {
		np.stats.DroppedDgrams++
		nw.ins.DroppedDgrams.Inc()
		return len(b), nil
	}
	// Fault-plane drops: a partition blackholes crossing datagrams without
	// an rng draw; degradation adds loss sampled only while active, so the
	// rng sequence with no plan armed is untouched.
	if nw.cut(p.host.id, remote.id) {
		np.stats.DroppedDgrams++
		nw.ins.DroppedDgrams.Inc()
		return len(b), nil
	}
	if nw.degraded && nw.degLoss > 0 && nw.degApplies(p.host.id, remote.id) &&
		np.rng.Float64() < nw.degLoss {
		np.stats.DroppedDgrams++
		nw.ins.DroppedDgrams.Inc()
		return len(b), nil
	}
	data := np.getBuf(len(b))
	copy(data, b)
	if nw.cross(p.host, remote) {
		senderFree := nw.upTimes(p.host, len(data))
		arrive := senderFree.Add(nw.delay(p.host.id, remote.id))
		nw.postDgram(p.host, remote, to.Port, data, p.Addr(), arrive)
		return len(b), nil
	}
	_, delivered := nw.sendTimes(p.host, remote, len(data))
	// Delivery re-checks for a live destination socket at delivery time;
	// a dead port silently swallows the datagram, like UDP.
	nw.scheduleDgram(delivered, remote, to.Port, data, p.Addr())
	return len(b), nil
}

func (p *packetConn) deliver(d dgram) {
	for len(p.waiters) > 0 {
		r := p.waiters[0]
		p.waiters = p.waiters[1:]
		// Stale refs (readers that timed out and moved on) wake nothing
		// and are simply discarded.
		if r.Wake(d) {
			return
		}
	}
	p.queue = append(p.queue, d)
}

// ReadFrom implements transport.PacketConn.
func (p *packetConn) ReadFrom(b []byte) (int, transport.Addr, error) {
	k := p.host.kern()
	for {
		if p.closed {
			return 0, transport.Addr{}, transport.ErrClosed
		}
		if len(p.queue) > 0 {
			d := p.queue[0]
			p.queue[0] = dgram{}
			p.queue = p.queue[1:]
			n := copy(b, d.data)
			p.host.np().putBuf(d.data) // copied out: recycle the payload
			return n, d.from, nil
		}
		if !p.deadline.IsZero() && !k.Now().Before(p.deadline) {
			return 0, transport.Addr{}, transport.ErrTimeout
		}
		w := k.NewWaiter()
		if !p.deadline.IsZero() {
			w.WakeAfter(p.deadline.Sub(k.Now()), transport.ErrTimeout)
		}
		p.waiters = append(p.waiters, w.Ref())
		switch v := w.Wait().(type) {
		case dgram:
			n := copy(b, v.data)
			p.host.np().putBuf(v.data)
			return n, v.from, nil
		case error:
			// Our entry in p.waiters is now a stale ref; deliver and
			// close discard it harmlessly.
			return 0, transport.Addr{}, v
		}
	}
}

// Close implements transport.PacketConn.
func (p *packetConn) Close() error {
	if p.closed {
		return nil
	}
	p.close()
	p.host.removePacket(p)
	return nil
}

func (p *packetConn) close() {
	p.closed = true
	for _, r := range p.waiters {
		r.Wake(transport.ErrClosed)
	}
	p.waiters = nil
	for _, d := range p.queue {
		p.host.np().putBuf(d.data)
	}
	p.queue = nil
}
