package simnet

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

func newTestNet(t *testing.T, n int, model LinkModel) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel()
	return k, New(k, model, n, 1)
}

func TestHostNames(t *testing.T) {
	if HostName(42) != "n42" {
		t.Fatalf("HostName(42) = %q", HostName(42))
	}
	id, err := HostID("n42")
	if err != nil || id != 42 {
		t.Fatalf("HostID(n42) = %d, %v", id, err)
	}
	for _, bad := range []string{"x42", "n-1", "n", "nxx"} {
		if _, err := HostID(bad); err == nil {
			t.Fatalf("HostID(%q) accepted", bad)
		}
	}
}

func TestDialAcceptRoundTrip(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 100 * time.Millisecond})
	var acceptedFrom transport.Addr
	var dialTime time.Duration
	var msg []byte

	k.Go(func() {
		l, err := nw.Node(1).Listen(80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		acceptedFrom = c.RemoteAddr()
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		msg = buf[:n]
		c.Close()
	})
	k.Go(func() {
		c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		dialTime = k.Since()
		if _, err := c.Write([]byte("hello")); err != nil {
			t.Errorf("write: %v", err)
		}
		c.Close()
	})
	k.Run()

	if dialTime != 100*time.Millisecond {
		t.Errorf("dial took %s, want 100ms (one RTT)", dialTime)
	}
	if acceptedFrom.Host != "n0" {
		t.Errorf("accepted from %v, want host n0", acceptedFrom)
	}
	if string(msg) != "hello" {
		t.Errorf("received %q, want hello", msg)
	}
}

func TestDialRefused(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 100 * time.Millisecond})
	var err error
	var at time.Duration
	k.Go(func() {
		_, err = nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 9999}, 0)
		at = k.Since()
	})
	k.Run()
	if !errors.Is(err, transport.ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if at != 100*time.Millisecond {
		t.Fatalf("refusal after %s, want one RTT", at)
	}
	if nw.Stats().RefusedDials != 1 {
		t.Fatalf("refused dials = %d", nw.Stats().RefusedDials)
	}
}

func TestDialTimeout(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 10 * time.Second})
	var err error
	var at time.Duration
	k.Go(func() {
		_, err = nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, time.Second)
		at = k.Since()
	})
	k.Run()
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if at != time.Second {
		t.Fatalf("timeout after %s, want 1s", at)
	}
}

func TestDialUnknownHost(t *testing.T) {
	k, nw := newTestNet(t, 1, Symmetric{})
	var err error
	k.Go(func() {
		_, err = nw.Node(0).Dial(transport.Addr{Host: "n7", Port: 80}, 0)
	})
	k.Run()
	if err == nil {
		t.Fatal("dial to out-of-range host succeeded")
	}
}

func TestBandwidthTransferTime(t *testing.T) {
	// 1 MB at 1 MB/s symmetric links: sender serialization ~1s, receiver
	// ~pipelined, one-way delay 50ms. Total ≈ 1s + 50ms + per-segment rx.
	const bps = 1 << 20
	k, nw := newTestNet(t, 2, Symmetric{RTT: 100 * time.Millisecond, Bps: bps})
	payload := make([]byte, 1<<20)
	var done time.Duration
	k.Go(func() {
		l, _ := nw.Node(1).Listen(80)
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		n, err := io.Copy(io.Discard, c)
		if err != nil || n != int64(len(payload)) {
			t.Errorf("copy: n=%d err=%v", n, err)
		}
		done = k.Since()
	})
	k.Go(func() {
		c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for off := 0; off < len(payload); off += 64 << 10 {
			if _, err := c.Write(payload[off : off+64<<10]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		c.Close()
	})
	k.Run()

	// Handshake 100ms + 1s serialization + 50ms delay + one 64KB segment rx
	// (~62.5ms). Accept generous bounds.
	if done < 1150*time.Millisecond || done > 1400*time.Millisecond {
		t.Fatalf("1MB at 1MB/s finished at %s, want ≈1.2s", done)
	}
}

func TestUplinkSharedBetweenFlows(t *testing.T) {
	// Two flows from n0 share its uplink: total time for 2×1MB at 1MB/s
	// should be ≈2s, not ≈1s.
	const bps = 1 << 20
	k, nw := newTestNet(t, 3, Symmetric{RTT: 0, Bps: bps})
	var last time.Duration
	recv := func(host, port int) {
		l, _ := nw.Node(host).Listen(port)
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
		if k.Since() > last {
			last = k.Since()
		}
	}
	send := func(to string, port int) {
		c, err := nw.Node(0).Dial(transport.Addr{Host: to, Port: port}, 0)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := make([]byte, 64<<10)
		for i := 0; i < 16; i++ {
			c.Write(buf)
		}
		c.Close()
	}
	k.Go(func() { recv(1, 80) })
	k.Go(func() { recv(2, 80) })
	k.Go(func() { send("n1", 80) })
	k.Go(func() { send("n2", 80) })
	k.Run()
	if last < 1900*time.Millisecond || last > 2300*time.Millisecond {
		t.Fatalf("2×1MB over shared 1MB/s uplink finished at %s, want ≈2s", last)
	}
}

func TestReadDeadline(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 10 * time.Millisecond})
	var err error
	k.Go(func() {
		l, _ := nw.Node(1).Listen(80)
		c, aerr := l.Accept()
		if aerr != nil {
			return
		}
		c.SetReadDeadline(k.Now().Add(time.Second))
		buf := make([]byte, 8)
		_, err = c.Read(buf)
	})
	k.Go(func() {
		// Dial but never write.
		nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		k.Sleep(5 * time.Second)
	})
	k.Run()
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("read err = %v, want ErrTimeout", err)
	}
}

func TestReadAfterDeadlinePasses(t *testing.T) {
	// Data arriving after a read timeout is still readable afterwards.
	k, nw := newTestNet(t, 2, Symmetric{RTT: 10 * time.Millisecond})
	var first error
	var second []byte
	k.Go(func() {
		l, _ := nw.Node(1).Listen(80)
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.SetReadDeadline(k.Now().Add(100 * time.Millisecond))
		buf := make([]byte, 8)
		_, first = c.Read(buf)
		c.SetReadDeadline(time.Time{})
		n, err := c.Read(buf)
		if err == nil {
			second = append([]byte(nil), buf[:n]...)
		}
	})
	k.Go(func() {
		c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			return
		}
		k.Sleep(500 * time.Millisecond)
		c.Write([]byte("late"))
	})
	k.Run()
	if !errors.Is(first, transport.ErrTimeout) {
		t.Fatalf("first read err = %v, want timeout", first)
	}
	if string(second) != "late" {
		t.Fatalf("second read = %q, want late", second)
	}
}

func TestCloseDeliversEOFAfterData(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 40 * time.Millisecond})
	var got []byte
	var readErr error
	k.Go(func() {
		l, _ := nw.Node(1).Listen(80)
		c, err := l.Accept()
		if err != nil {
			return
		}
		got, readErr = io.ReadAll(c)
	})
	k.Go(func() {
		c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			return
		}
		c.Write([]byte("abc"))
		c.Write([]byte("def"))
		c.Close()
	})
	k.Run()
	if readErr != nil {
		t.Fatalf("ReadAll: %v", readErr)
	}
	if string(got) != "abcdef" {
		t.Fatalf("got %q, want abcdef", got)
	}
}

func TestHostDownResetsEverything(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 20 * time.Millisecond})
	var readErr, dialErr error
	k.Go(func() {
		l, _ := nw.Node(1).Listen(80)
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() { _ = c }()
			_ = c
		}
	})
	k.Go(func() {
		c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := make([]byte, 8)
		_, readErr = c.Read(buf) // blocked when n1 dies
	})
	k.GoAfter(time.Second, func() {
		nw.Host(1).SetDown(true)
		_, dialErr = nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
	})
	k.Run()
	if !errors.Is(readErr, transport.ErrClosed) {
		t.Fatalf("read err = %v, want ErrClosed", readErr)
	}
	if !errors.Is(dialErr, transport.ErrRefused) {
		t.Fatalf("dial err = %v, want ErrRefused", dialErr)
	}
	if !nw.Host(1).Down() {
		t.Fatal("host 1 should be down")
	}
}

func TestHostRevives(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 20 * time.Millisecond})
	nw.Host(1).SetDown(true)
	var err error
	k.Go(func() {
		k.Sleep(time.Second)
		nw.Host(1).SetDown(false)
		l, lerr := nw.Node(1).Listen(80)
		if lerr != nil {
			t.Errorf("listen after revive: %v", lerr)
			return
		}
		go func() { _ = l }()
		k.Go(func() { l.Accept() })
		k.Sleep(10 * time.Millisecond)
		_, err = nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
	})
	k.Run()
	if err != nil {
		t.Fatalf("dial after revive: %v", err)
	}
}

func TestSilentFailureBlackholes(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 20 * time.Millisecond})
	nw.SetSilentFailures(true)
	var dialErr, readErr error
	var dialAt time.Duration
	k.Go(func() {
		l, _ := nw.Node(1).Listen(80)
		k.Go(func() { l.Accept() }) //nolint:errcheck
	})
	k.GoAfter(time.Second, func() {
		// Established connection first.
		c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		nw.Host(1).SetDown(true)
		// Writes to the dead host vanish without error.
		if _, err := c.Write([]byte("into the void")); err != nil {
			t.Errorf("write to blackhole errored: %v", err)
		}
		// Reads block until the deadline, not an immediate reset.
		c.SetReadDeadline(k.Now().Add(2 * time.Second))
		_, readErr = c.Read(make([]byte, 8))
		// New dials time out instead of being refused.
		start := k.Since()
		_, dialErr = nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 3*time.Second)
		dialAt = k.Since() - start
	})
	k.Run()
	if !errors.Is(readErr, transport.ErrTimeout) {
		t.Fatalf("read err = %v, want timeout", readErr)
	}
	if !errors.Is(dialErr, transport.ErrTimeout) {
		t.Fatalf("dial err = %v, want timeout", dialErr)
	}
	if dialAt != 3*time.Second {
		t.Fatalf("dial failed after %s, want full 3s timeout", dialAt)
	}
}

func TestDatagrams(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 30 * time.Millisecond})
	var got []byte
	var from transport.Addr
	var at time.Duration
	k.Go(func() {
		pc, err := nw.Node(1).ListenPacket(5000)
		if err != nil {
			t.Errorf("listenpacket: %v", err)
			return
		}
		buf := make([]byte, 128)
		n, f, err := pc.ReadFrom(buf)
		if err != nil {
			t.Errorf("readfrom: %v", err)
			return
		}
		got, from, at = buf[:n], f, k.Since()
	})
	k.Go(func() {
		pc, err := nw.Node(0).ListenPacket(6000)
		if err != nil {
			t.Errorf("listenpacket: %v", err)
			return
		}
		pc.WriteTo([]byte("ping"), transport.Addr{Host: "n1", Port: 5000})
	})
	k.Run()
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
	if from.Host != "n0" || from.Port != 6000 {
		t.Fatalf("from = %v", from)
	}
	if at != 15*time.Millisecond {
		t.Fatalf("delivered at %s, want one-way 15ms", at)
	}
}

type lossyModel struct {
	Symmetric
	loss float64
}

func (l lossyModel) Loss(a, b int) float64 { return l.loss }

func TestDatagramLoss(t *testing.T) {
	k, nw := newTestNet(t, 2, lossyModel{Symmetric{RTT: 10 * time.Millisecond}, 1.0})
	delivered := false
	k.Go(func() {
		pc, _ := nw.Node(1).ListenPacket(5000)
		buf := make([]byte, 16)
		pc.SetReadDeadline(k.Now().Add(time.Second))
		if _, _, err := pc.ReadFrom(buf); err == nil {
			delivered = true
		}
	})
	k.Go(func() {
		pc, _ := nw.Node(0).ListenPacket(0)
		for i := 0; i < 10; i++ {
			pc.WriteTo([]byte("x"), transport.Addr{Host: "n1", Port: 5000})
		}
	})
	k.Run()
	if delivered {
		t.Fatal("datagram delivered despite 100% loss")
	}
	if nw.Stats().DroppedDgrams != 10 {
		t.Fatalf("dropped = %d, want 10", nw.Stats().DroppedDgrams)
	}
}

func TestOversizeDatagramRejected(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{})
	var err error
	k.Go(func() {
		pc, _ := nw.Node(0).ListenPacket(0)
		_, err = pc.WriteTo(make([]byte, MaxDatagram+1), transport.Addr{Host: "n1", Port: 5000})
	})
	k.Run()
	if err == nil {
		t.Fatal("oversize datagram accepted")
	}
}

func TestPortsInUse(t *testing.T) {
	k, nw := newTestNet(t, 1, Symmetric{})
	k.Go(func() {
		if _, err := nw.Node(0).Listen(80); err != nil {
			t.Errorf("first listen: %v", err)
		}
		if _, err := nw.Node(0).Listen(80); err == nil {
			t.Error("second listen on same port succeeded")
		}
		if _, err := nw.Node(0).ListenPacket(5000); err != nil {
			t.Errorf("first packet listen: %v", err)
		}
		if _, err := nw.Node(0).ListenPacket(5000); err == nil {
			t.Error("second packet listen on same port succeeded")
		}
	})
	k.Run()
}

func TestListenerCloseWakesAcceptor(t *testing.T) {
	k, nw := newTestNet(t, 1, Symmetric{})
	var err error
	k.Go(func() {
		l, _ := nw.Node(0).Listen(80)
		k.Go(func() {
			k.Sleep(time.Second)
			l.Close()
		})
		_, err = l.Accept()
	})
	k.Run()
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("accept err = %v, want ErrClosed", err)
	}
}

// Property: any sequence of writes is received intact and in order.
func TestQuickStreamIntegrity(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		nw := New(k, Symmetric{RTT: time.Duration(rng.Intn(200)) * time.Millisecond, Bps: 1 << 20}, 2, seed)
		var sent, recv bytes.Buffer
		ok := true
		k.Go(func() {
			l, _ := nw.Node(1).Listen(80)
			c, err := l.Accept()
			if err != nil {
				ok = false
				return
			}
			if _, err := io.Copy(&recv, c); err != nil {
				ok = false
			}
		})
		k.Go(func() {
			c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
			if err != nil {
				ok = false
				return
			}
			for _, s := range sizes {
				chunk := make([]byte, int(s)%4096+1)
				rng.Read(chunk)
				sent.Write(chunk)
				if _, err := c.Write(chunk); err != nil {
					ok = false
					return
				}
			}
			c.Close()
		})
		k.Run()
		return ok && bytes.Equal(sent.Bytes(), recv.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProcDelayHook(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 0})
	nw.SetProcDelay(func(host, size int) time.Duration {
		return 250 * time.Millisecond
	})
	var at time.Duration
	k.Go(func() {
		l, _ := nw.Node(1).Listen(80)
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 8)
		c.Read(buf)
		at = k.Since()
	})
	k.Go(func() {
		c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
		if err != nil {
			return
		}
		c.Write([]byte("x"))
	})
	k.Run()
	if at != 250*time.Millisecond {
		t.Fatalf("delivery at %s, want 250ms proc delay", at)
	}
}

// TestEphemeralPortExhaustion occupies every ephemeral port and checks that
// Listen, ListenPacket and Dial report an error instead of spinning forever.
func TestEphemeralPortExhaustion(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: time.Millisecond})
	h := nw.Host(0)
	k.Go(func() {
		for p := 40000; p <= 65000; p++ {
			if _, err := h.Listen(p); err != nil {
				t.Errorf("listen %d: %v", p, err)
				return
			}
		}
		if _, err := h.Listen(0); err == nil {
			t.Error("Listen(0) succeeded with all ephemeral ports occupied")
		}
		if _, err := h.ListenPacket(0); err == nil {
			t.Error("ListenPacket(0) succeeded with all ephemeral ports occupied")
		}
		if _, err := h.Dial(transport.Addr{Host: "n1", Port: 80}, time.Second); err == nil {
			t.Error("Dial succeeded with no free local port")
		}
	})
	k.Run()
}

// TestDialVerdictAfterTimeout reproduces the pooled-waiter race: the dialer
// times out (slow verdict), its waiter is recycled, and the late verdict
// must tear the orphan connection down rather than wake anything.
func TestDialVerdictAfterTimeout(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 10 * time.Second})
	srv := nw.Host(1)
	var accepted transport.Conn
	k.Go(func() {
		l, err := srv.Listen(80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := l.Accept()
		if err == nil {
			accepted = c
		}
	})
	dialErrs := make([]error, 0, 2)
	k.Go(func() {
		// Times out at 1 s; the verdict would land at 10 s.
		_, err := nw.Host(0).Dial(transport.Addr{Host: "n1", Port: 80}, time.Second)
		dialErrs = append(dialErrs, err)
		// Immediately park a second waiter (recycles the first); the late
		// verdict at t=10 s must not corrupt it.
		_, err = nw.Host(0).Dial(transport.Addr{Host: "n1", Port: 81}, 30*time.Second)
		dialErrs = append(dialErrs, err)
	})
	k.Run()
	if len(dialErrs) != 2 || !errors.Is(dialErrs[0], transport.ErrTimeout) {
		t.Fatalf("first dial: %v", dialErrs)
	}
	if !errors.Is(dialErrs[1], transport.ErrRefused) {
		t.Fatalf("second dial: %v (late verdict corrupted a recycled waiter?)", dialErrs[1])
	}
	if accepted == nil {
		t.Fatal("server never accepted the (orphaned) connection")
	}
	// The orphan is closed by the dialer's verdict handler: reads observe EOF.
	k.Go(func() {
		buf := make([]byte, 1)
		if _, err := accepted.Read(buf); !errors.Is(err, io.EOF) && !errors.Is(err, transport.ErrClosed) {
			t.Errorf("orphan read: %v, want EOF/closed", err)
		}
	})
	k.Run()
}

// TestPacketDeadlineWaiterRecycled: a ReadFrom deadline fires, the waiter is
// recycled, and a later datagram delivery must not wake the stale entry.
func TestPacketDeadlineWaiterRecycled(t *testing.T) {
	k, nw := newTestNet(t, 2, Symmetric{RTT: 4 * time.Second})
	var firstErr error
	var got []byte
	k.Go(func() {
		pc, err := nw.Host(1).ListenPacket(9000)
		if err != nil {
			t.Errorf("listen packet: %v", err)
			return
		}
		buf := make([]byte, 16)
		pc.SetReadDeadline(k.Now().Add(time.Second)) //nolint:errcheck
		_, _, firstErr = pc.ReadFrom(buf)            // times out at 1 s; dgram lands at 2 s
		pc.SetReadDeadline(time.Time{})              //nolint:errcheck
		n, _, err := pc.ReadFrom(buf)                // must receive the dgram normally
		if err != nil {
			t.Errorf("second read: %v", err)
			return
		}
		got = append(got, buf[:n]...)
	})
	k.Go(func() {
		pc, err := nw.Host(0).ListenPacket(9001)
		if err != nil {
			t.Errorf("sender socket: %v", err)
			return
		}
		pc.WriteTo([]byte("hi"), transport.Addr{Host: "n1", Port: 9000}) //nolint:errcheck
	})
	k.Run()
	if !errors.Is(firstErr, transport.ErrTimeout) {
		t.Fatalf("first read: %v, want timeout", firstErr)
	}
	if string(got) != "hi" {
		t.Fatalf("second read got %q", got)
	}
}
