package simnet

import (
	"sort"
	"time"
)

// This file is simnet's half of the fault plane (see internal/faults):
// partitions and link degradation, applied by the scenario layer's
// actuators from inside kernel tasks. Every hook these methods arm is
// checked behind the nil/zero fields on Network, so a network that never
// sees a fault call runs the exact same event schedule and rng sequence
// as before the fault plane existed.

// Partition splits the network: hosts with sideB[id] true form one group,
// the rest the other, and no traffic crosses. Crossing stream connections
// reset immediately (both endpoints observe errors, in connection creation
// order so simulations stay deterministic); crossing dials and datagrams
// blackhole until HealPartition. Bytes already in flight still arrive —
// a partition severs links, it does not reach into receive queues.
//
// Must be called from a kernel task. A second call replaces the first.
// Not supported on multi-partition (sharded-kernel) networks.
func (nw *Network) Partition(sideB []bool) {
	nw.assertUnpartitioned("Partition")
	nw.partition = sideB
	if sideB == nil {
		return
	}
	var crossing []*conn
	for _, h := range nw.hosts {
		for _, c := range h.conns {
			if nw.cut(c.h.id, c.peerHost.id) {
				crossing = append(crossing, c)
			}
		}
	}
	sort.Slice(crossing, func(i, j int) bool { return crossing[i].seq < crossing[j].seq })
	for _, c := range crossing {
		c.reset()
	}
}

// HealPartition removes the partition. Reconnection is the application's
// job (daemons redial the controller, protocols repair their links).
func (nw *Network) HealPartition() { nw.partition = nil }

// Partitioned reports whether a partition is active.
func (nw *Network) Partitioned() bool { return nw.partition != nil }

// cut reports whether the active partition separates hosts a and b.
func (nw *Network) cut(a, b int) bool {
	p := nw.partition
	return p != nil && a < len(p) && b < len(p) && p[a] != p[b]
}

// Degrade adds extra one-way latency and datagram loss to links touching
// the selected hosts (nil selects every host). Streams stay reliable, as
// in the link model proper; only their delivery slows down.
// Not supported on multi-partition (sharded-kernel) networks.
func (nw *Network) Degrade(hosts []bool, extraLatency time.Duration, loss float64) {
	nw.assertUnpartitioned("Degrade")
	nw.degHosts = hosts
	nw.degExtra = extraLatency
	nw.degLoss = loss
	nw.degraded = true
}

// Restore removes the degradation.
func (nw *Network) Restore() {
	nw.degHosts = nil
	nw.degExtra = 0
	nw.degLoss = 0
	nw.degraded = false
}

// degApplies reports whether degradation touches the a→b link.
func (nw *Network) degApplies(a, b int) bool {
	h := nw.degHosts
	if h == nil {
		return true
	}
	return (a < len(h) && h[a]) || (b < len(h) && h[b])
}
