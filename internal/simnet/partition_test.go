package simnet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

// partitionedWorkload exercises every cross-partition path — dials, stream
// writes, EOFs, datagrams, refused dials — on a P-partition network and
// returns a deterministic trace plus final state. Each host logs only into
// its own slice, so the trace is race-free under any worker count and can
// be compared byte-for-byte across runs.
func partitionedWorkload(t *testing.T, parts, workers int) (string, Stats, time.Duration, uint64) {
	t.Helper()
	const n = 8
	pk := sim.NewParKernel(parts, workers, 5*time.Millisecond)
	nw, err := NewPartitioned(pk, Symmetric{RTT: 20 * time.Millisecond, Bps: 1 << 20}, n, 7)
	if err != nil {
		t.Fatal(err)
	}

	logs := make([][]string, n)
	logf := func(host int, format string, args ...any) {
		logs[host] = append(logs[host], fmt.Sprintf(format, args...))
	}

	for i := 0; i < n; i++ {
		i := i
		h := nw.Host(i)
		// Server: accept two connections, echo everything read.
		pk.Go(h.Part(), func() {
			l, err := nw.Node(i).Listen(80)
			if err != nil {
				t.Errorf("n%d listen: %v", i, err)
				return
			}
			for c := 0; c < 2; c++ {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				pk.Go(h.Part(), func() {
					buf := make([]byte, 256)
					for {
						m, err := conn.Read(buf)
						if err != nil {
							logf(i, "server read end: %v", err)
							conn.Close()
							return
						}
						logf(i, "server got %q from %s", buf[:m], conn.RemoteAddr().Host)
						if _, err := conn.Write(buf[:m]); err != nil {
							return
						}
					}
				})
			}
		})
		// Datagram listener.
		pk.Go(h.Part(), func() {
			pc, err := nw.Node(i).ListenPacket(90)
			if err != nil {
				t.Errorf("n%d listen packet: %v", i, err)
				return
			}
			buf := make([]byte, 256)
			for d := 0; d < 2; d++ {
				m, from, err := pc.ReadFrom(buf)
				if err != nil {
					return
				}
				logf(i, "dgram %q from %s", buf[:m], from.Host)
			}
		})
		// Client: dial across partitions, ping twice, close; then misdial a
		// dead port (refusal crosses back), then fire datagrams.
		pk.GoAfter(h.Part(), time.Duration(i)*time.Millisecond, func() {
			peer := (i + 3) % n
			c, err := nw.Node(i).Dial(transport.Addr{Host: HostName(peer), Port: 80}, 0)
			if err != nil {
				t.Errorf("n%d dial: %v", i, err)
				return
			}
			buf := make([]byte, 256)
			for p := 0; p < 2; p++ {
				msg := fmt.Sprintf("ping%d-from-n%d", p, i)
				if _, err := c.Write([]byte(msg)); err != nil {
					t.Errorf("n%d write: %v", i, err)
					return
				}
				m, err := c.Read(buf)
				if err != nil {
					t.Errorf("n%d echo read: %v", i, err)
					return
				}
				logf(i, "echo %q", buf[:m])
			}
			c.Close()
			if _, err := nw.Node(i).Dial(transport.Addr{Host: HostName(peer), Port: 81}, 0); err != transport.ErrRefused {
				t.Errorf("n%d misdial: got %v, want refused", i, err)
			}
			pc, err := nw.Node(i).ListenPacket(0)
			if err != nil {
				t.Errorf("n%d dgram socket: %v", i, err)
				return
			}
			for d := 0; d < 2; d++ {
				target := (i + 1 + d*2) % n
				pc.WriteTo([]byte(fmt.Sprintf("hail%d-from-n%d", d, i)), transport.Addr{Host: HostName(target), Port: 90})
			}
		})
	}
	pk.Run()

	var sb strings.Builder
	for i, l := range logs {
		fmt.Fprintf(&sb, "== n%d ==\n", i)
		for _, line := range l {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nw.Stats(), pk.Since(), pk.Events()
}

// TestPartitionedWorkerNeutrality pins invariant 9 at the network layer:
// the same partitioned scenario produces the identical trace, stats, clock
// and event count whether it runs on 1, 2 or 4 worker threads.
func TestPartitionedWorkerNeutrality(t *testing.T) {
	trace1, stats1, since1, ev1 := partitionedWorkload(t, 4, 1)
	if !strings.Contains(trace1, "echo") || !strings.Contains(trace1, "dgram") {
		t.Fatalf("workload traced nothing useful:\n%s", trace1)
	}
	for _, w := range []int{2, 4} {
		trace, stats, since, ev := partitionedWorkload(t, 4, w)
		if trace != trace1 {
			t.Errorf("workers=%d trace differs from workers=1:\n--- w1 ---\n%s\n--- w%d ---\n%s", w, trace1, w, trace)
		}
		if stats != stats1 {
			t.Errorf("workers=%d stats %+v != %+v", w, stats, stats1)
		}
		if since != since1 || ev != ev1 {
			t.Errorf("workers=%d clock/events (%s, %d) != (%s, %d)", w, since, ev, since1, ev1)
		}
	}
}

// TestPartitionedSeedSensitivity guards against the neutrality test passing
// vacuously: a different seed must change nothing here (Symmetric draws no
// loss), but a different partition count changes host placement and may
// reorder the schedule — the trace must still be internally consistent.
func TestPartitionedPartitionCountsRun(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		trace, stats, _, _ := partitionedWorkload(t, p, 2)
		if stats.Dials != 16 || stats.RefusedDials != 8 {
			t.Errorf("parts=%d: dials %d refused %d, want 16/8", p, stats.Dials, stats.RefusedDials)
		}
		if c := strings.Count(trace, "echo"); c != 16 {
			t.Errorf("parts=%d: %d echoes, want 16", p, c)
		}
		if c := strings.Count(trace, "dgram"); c != 16 {
			t.Errorf("parts=%d: %d datagrams delivered, want 16", p, c)
		}
	}
}

// TestSinglePartitionMatchesPlainNetwork pins that New and a one-partition
// NewPartitioned are the same machine: same rng stream, same seq numbers,
// same schedule.
func TestSinglePartitionMatchesPlainNetwork(t *testing.T) {
	run := func(k *sim.Kernel, nw *Network, runKernel func() uint64) (time.Duration, Stats, []string) {
		var trace []string
		k.Go(func() {
			l, _ := nw.Node(1).Listen(80)
			c, err := l.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 64)
			for {
				n, err := c.Read(buf)
				if err != nil {
					trace = append(trace, fmt.Sprintf("server end %v at %s", err, k.Since()))
					return
				}
				trace = append(trace, fmt.Sprintf("server %q at %s", buf[:n], k.Since()))
			}
		})
		k.Go(func() {
			c, err := nw.Node(0).Dial(transport.Addr{Host: "n1", Port: 80}, 0)
			if err != nil {
				return
			}
			c.Write([]byte("one"))
			c.Write([]byte("two"))
			c.Close()
		})
		runKernel()
		return k.Since(), nw.Stats(), trace
	}

	k1 := sim.NewKernel()
	nw1 := New(k1, Symmetric{RTT: 30 * time.Millisecond, Bps: 1 << 16}, 2, 42)
	d1, s1, t1 := run(k1, nw1, k1.Run)

	pk := sim.NewParKernel(1, 1, 0)
	nw2, err := NewPartitioned(pk, Symmetric{RTT: 30 * time.Millisecond, Bps: 1 << 16}, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	d2, s2, t2 := run(pk.Sub(0), nw2, pk.Run)

	if d1 != d2 || s1 != s2 || !reflect.DeepEqual(t1, t2) {
		t.Errorf("single-partition network diverged from plain network:\nplain: %s %+v %q\npart:  %s %+v %q", d1, s1, t1, d2, s2, t2)
	}
}

func TestNewPartitionedValidation(t *testing.T) {
	type bare struct{ Symmetric }
	// A model hiding MinDelay behind a non-implementing wrapper.
	noMin := struct{ LinkModel }{Symmetric{RTT: 10 * time.Millisecond}}

	if _, err := NewPartitioned(sim.NewParKernel(2, 1, time.Millisecond), noMin, 4, 1); err == nil {
		t.Error("model without MinDelay accepted for 2 partitions")
	}
	if _, err := NewPartitioned(sim.NewParKernel(2, 1, 6*time.Millisecond), Symmetric{RTT: 10 * time.Millisecond}, 4, 1); err == nil {
		t.Error("lookahead above MinDelay accepted")
	}
	if _, err := NewPartitioned(sim.NewParKernel(2, 1, 5*time.Millisecond), Symmetric{RTT: 10 * time.Millisecond}, 4, 1); err != nil {
		t.Errorf("lookahead == MinDelay rejected: %v", err)
	}
	if _, err := NewPartitioned(sim.NewParKernel(1, 1, 0), noMin, 4, 1); err != nil {
		t.Errorf("single partition should not need MinDelay: %v", err)
	}
	_ = bare{}
}

func TestPartitionedFaultsPanic(t *testing.T) {
	pk := sim.NewParKernel(2, 1, 5*time.Millisecond)
	nw, err := NewPartitioned(pk, Symmetric{RTT: 10 * time.Millisecond}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on a partitioned network", name)
			}
		}()
		f()
	}
	expectPanic("Partition", func() { nw.Partition(make([]bool, 4)) })
	expectPanic("Degrade", func() { nw.Degrade(nil, time.Millisecond, 0) })
	expectPanic("SetDown", func() { nw.Host(0).SetDown(true) })
}
