package simnet

import (
	"time"

	"github.com/splaykit/splay/internal/transport"
)

// delivery is a pooled, reusable scheduled message. The per-network free
// list plus the one closure created per pooled object (d.run, capturing only
// d) make the message hot path — stream writes, EOFs and datagrams —
// allocation-free in steady state apart from the payload copy itself.
type delivery struct {
	nw   *Network
	run  func() // scheduled on the kernel; created once per pooled object
	next *delivery

	kind uint8
	pipe *pipe  // dlvData, dlvEOF
	data []byte // dlvData, dlvDgram payload
	to   *Host  // dlvDgram destination host
	port int    // dlvDgram destination port
	from transport.Addr
}

const (
	dlvData uint8 = iota
	dlvEOF
	dlvDgram
)

func (nw *Network) newDelivery() *delivery {
	if d := nw.freeDlv; d != nil {
		nw.freeDlv = d.next
		d.next = nil
		return d
	}
	d := &delivery{nw: nw}
	d.run = func() { d.fire() }
	return d
}

// fire performs the delivery and recycles the object. All conditions are
// re-checked at delivery time, exactly like the closures this replaces.
func (d *delivery) fire() {
	d.nw.ins.Deliveries.Inc()
	d.nw.ins.QueuedBytes.Add(-int64(len(d.data)))
	switch d.kind {
	case dlvData:
		d.pipe.deliverData(d.data)
	case dlvEOF:
		d.pipe.deliverEOF()
	case dlvDgram:
		if dst, ok := d.to.packets[d.port]; ok && !dst.closed && !d.to.down {
			dst.deliver(dgram{data: d.data, from: d.from})
		} else {
			d.nw.putBuf(d.data) // dead port swallows the datagram
		}
	}
	nw := d.nw
	d.pipe = nil
	d.data = nil
	d.to = nil
	d.from = transport.Addr{}
	d.next = nw.freeDlv
	nw.freeDlv = d
}

// scheduleData delivers data into p at virtual time at.
func (nw *Network) scheduleData(at time.Time, p *pipe, data []byte) {
	d := nw.newDelivery()
	d.kind = dlvData
	d.pipe = p
	d.data = data
	nw.ins.QueuedBytes.Add(int64(len(data)))
	nw.kernel.AtFunc(at, d.run)
}

// scheduleEOF delivers EOF into p at virtual time at.
func (nw *Network) scheduleEOF(at time.Time, p *pipe) {
	d := nw.newDelivery()
	d.kind = dlvEOF
	d.pipe = p
	nw.kernel.AtFunc(at, d.run)
}

// scheduleDgram delivers a datagram to (to, port) at virtual time at.
func (nw *Network) scheduleDgram(at time.Time, to *Host, port int, data []byte, from transport.Addr) {
	d := nw.newDelivery()
	d.kind = dlvDgram
	d.to = to
	d.port = port
	d.data = data
	d.from = from
	nw.ins.QueuedBytes.Add(int64(len(data)))
	nw.kernel.AtFunc(at, d.run)
}
