package simnet

import (
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

// delivery is a pooled, reusable scheduled message. The per-partition free
// list plus the one closure created per pooled object (d.run, capturing only
// d) make the message hot path — stream writes, EOFs and datagrams —
// allocation-free in steady state apart from the payload copy itself.
//
// A delivery fires in one of two shapes. Intra-partition messages are
// scheduled directly at their delivery instant with a terminal kind
// (dlvData, dlvEOF, dlvDgram): fire delivers and recycles. Cross-partition
// messages carry a staged kind (dlvXData, dlvXEOF, dlvXDgram) and are
// posted to the destination partition at their *arrival* instant — the
// moment the payload reaches the receiver's access link. Firing a staged
// kind runs the receiver half of the fluid model (downlink queueing,
// processing delay, pipe FIFO floor) on the destination's own state, then
// reschedules the same object under the terminal kind. The split keeps
// every mutation of host state on the partition that owns the host.
type delivery struct {
	nw   *Network
	run  func() // scheduled on the kernel; created once per pooled object
	next *delivery

	kind uint8
	pipe *pipe  // dlvData, dlvEOF
	data []byte // dlvData, dlvDgram payload
	to   *Host  // dlvDgram destination host
	port int    // dlvDgram destination port
	from transport.Addr
}

const (
	dlvData uint8 = iota
	dlvEOF
	dlvDgram
	dlvXData  // cross-partition stage 1: data arriving at receiver's link
	dlvXEOF   // cross-partition stage 1: EOF arriving
	dlvXDgram // cross-partition stage 1: datagram arriving
)

// newDelivery allocates from this partition's pool. Deliveries recycle into
// the pool of the partition whose kernel fired them — the destination — so
// a steady cross-partition flow drains one pool and feeds the other; the
// reverse traffic of any real protocol balances it, and an imbalance only
// costs the pool a few extra objects, never correctness.
func (pt *netPart) newDelivery(nw *Network) *delivery {
	if d := pt.freeDlv; d != nil {
		pt.freeDlv = d.next
		d.next = nil
		return d
	}
	d := &delivery{nw: nw}
	d.run = func() { d.fire() }
	return d
}

// fire performs the delivery and recycles the object. All conditions are
// re-checked at delivery time, exactly like the closures this replaces.
func (d *delivery) fire() {
	// Staged cross-partition kinds: run the receiver half of the fluid
	// model now, on the destination partition at arrival time, and
	// reschedule this same object as its terminal kind. No recycling yet.
	switch d.kind {
	case dlvXData:
		k := d.pipe.dst.kern()
		at := d.pipe.deliverTime(d.nw.recvTimes(d.pipe.dst, k.Now(), len(d.data)))
		d.kind = dlvData
		k.AtFunc(at, d.run)
		return
	case dlvXEOF:
		k := d.pipe.dst.kern()
		at := d.pipe.deliverTime(k.Now())
		d.kind = dlvEOF
		k.AtFunc(at, d.run)
		return
	case dlvXDgram:
		k := d.to.kern()
		at := d.nw.recvTimes(d.to, k.Now(), len(d.data))
		d.kind = dlvDgram
		k.AtFunc(at, d.run)
		return
	}

	d.nw.ins.Deliveries.Inc()
	d.nw.ins.QueuedBytes.Add(-int64(len(d.data)))
	var pt *netPart
	switch d.kind {
	case dlvData:
		pt = d.pipe.dst.np()
		d.pipe.deliverData(d.data)
	case dlvEOF:
		pt = d.pipe.dst.np()
		d.pipe.deliverEOF()
	case dlvDgram:
		pt = d.to.np()
		if dst := d.to.packetOn(d.port); dst != nil && !dst.closed && !d.to.down {
			dst.deliver(dgram{data: d.data, from: d.from})
		} else {
			pt.putBuf(d.data) // dead port swallows the datagram
		}
	}
	d.pipe = nil
	d.data = nil
	d.to = nil
	d.from = transport.Addr{}
	d.next = pt.freeDlv
	pt.freeDlv = d
}

// scheduleData delivers data into p at virtual time at. Same-partition
// only: at is the full fluid-model delivery instant.
func (nw *Network) scheduleData(at time.Time, p *pipe, data []byte) {
	d := p.dst.np().newDelivery(nw)
	d.kind = dlvData
	d.pipe = p
	d.data = data
	nw.ins.QueuedBytes.Add(int64(len(data)))
	p.dst.kern().AtFunc(at, d.run)
}

// scheduleEOF delivers EOF into p at virtual time at. Same-partition only.
func (nw *Network) scheduleEOF(at time.Time, p *pipe) {
	d := p.dst.np().newDelivery(nw)
	d.kind = dlvEOF
	d.pipe = p
	p.dst.kern().AtFunc(at, d.run)
}

// scheduleDgram delivers a datagram to (to, port) at virtual time at.
// Same-partition only.
func (nw *Network) scheduleDgram(at time.Time, to *Host, port int, data []byte, from transport.Addr) {
	d := to.np().newDelivery(nw)
	d.kind = dlvDgram
	d.to = to
	d.port = port
	d.data = data
	d.from = from
	nw.ins.QueuedBytes.Add(int64(len(data)))
	to.kern().AtFunc(at, d.run)
}

// postData ships data from host `from` into pipe p (owned by another
// partition), arriving at the receiver's link at virtual time arrive. The
// staged delivery crosses at the ParKernel barrier; receiver-side queueing
// happens on arrival.
func (nw *Network) postData(from *Host, p *pipe, data []byte, arrive time.Time) {
	d := from.np().newDelivery(nw)
	d.kind = dlvXData
	d.pipe = p
	d.data = data
	nw.ins.QueuedBytes.Add(int64(len(data)))
	nw.pk.Post(from.part, p.dst.part, int64(arrive.Sub(sim.Epoch)), d.run)
}

// postEOF ships a stream EOF across partitions, arriving at arrive.
func (nw *Network) postEOF(from *Host, p *pipe, arrive time.Time) {
	d := from.np().newDelivery(nw)
	d.kind = dlvXEOF
	d.pipe = p
	nw.pk.Post(from.part, p.dst.part, int64(arrive.Sub(sim.Epoch)), d.run)
}

// postDgram ships a datagram across partitions, arriving at arrive.
func (nw *Network) postDgram(from, to *Host, port int, data []byte, fromAddr transport.Addr, arrive time.Time) {
	d := from.np().newDelivery(nw)
	d.kind = dlvXDgram
	d.to = to
	d.port = port
	d.data = data
	d.from = fromAddr
	nw.ins.QueuedBytes.Add(int64(len(data)))
	nw.pk.Post(from.part, to.part, int64(arrive.Sub(sim.Epoch)), d.run)
}
