package simnet

import (
	"io"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

// pipe is one direction of a stream connection: bytes in flight toward, or
// buffered at, the destination host. Pipes live in per-partition arenas at
// one per connection direction, so the struct is kept compact: virtual
// times are int64 nanoseconds since sim.Epoch (a third the size of
// time.Time) and cursors are int32.
type pipe struct {
	dst *Host

	segs   [][]byte // delivered, unread segments; a ring over one backing array
	head   int32    // index of the first unread segment
	off    int32    // read offset into segs[head]
	eof    bool     // write end closed and EOF delivered
	frozen bool     // blackholed: drop deliveries, never notify readers
	err    error    // connection reset

	reader        *sim.Waiter // parked reader, if any
	onReadable    func()      // armed event-driven reader (EventConn), if any
	lastDeliverNS int64       // FIFO floor for future deliveries, ns since Epoch
}

func (p *pipe) deliverTime(t time.Time) time.Time {
	ns := int64(t.Sub(sim.Epoch))
	if ns < p.lastDeliverNS {
		ns = p.lastDeliverNS
		t = sim.Epoch.Add(time.Duration(ns))
	}
	p.lastDeliverNS = ns
	return t
}

func (p *pipe) deliverData(data []byte) {
	if p.eof || p.err != nil || p.frozen {
		p.dst.np().putBuf(data) // dropped: the payload buffer is free again
		return
	}
	if int(p.head) == len(p.segs) {
		// Everything delivered so far was consumed: rewind onto the
		// same backing array instead of appending forever.
		p.segs = p.segs[:0]
		p.head = 0
	}
	p.segs = append(p.segs, data)
	p.wakeReader()
}

// unread reports whether the pipe holds delivered, unconsumed segments.
func (p *pipe) unread() bool { return int(p.head) < len(p.segs) }

func (p *pipe) deliverEOF() {
	if p.eof || p.err != nil || p.frozen {
		return
	}
	p.eof = true
	p.wakeReader()
}

func (p *pipe) fail(err error) {
	if p.err != nil {
		return
	}
	p.err = err
	p.wakeReader()
}

// wakeReader wakes whichever reader is attached: a parked task's waiter,
// or an armed event-driven callback. Both paths cost exactly one kernel
// event (one alloc + one push at the current instant), so swapping a
// task-based reader for an event-driven one cannot move any simulation
// schedule — the pinned golden event orders see the same sequence
// numbers either way.
func (p *pipe) wakeReader() {
	if p.reader != nil {
		w := p.reader
		p.reader = nil
		w.Wake(nil)
		return
	}
	if p.onReadable != nil {
		cb := p.onReadable
		p.onReadable = nil
		p.dst.kern().AfterFunc(0, cb)
	}
}

// conn is one endpoint of a simulated stream connection. Like pipe it is
// arena-backed and population-scaled, so only ports are stored — the
// endpoint addresses are derived from the host pointers on the rare
// LocalAddr/RemoteAddr call — and the read deadline is int64 nanoseconds.
type conn struct {
	h        *Host
	peerHost *Host

	rd *pipe // data flowing toward us
	wr *pipe // data flowing toward the peer

	seq        int   // creation order; fault-plane resets replay in seq order
	lport      int32 // local port
	rport      int32 // remote port
	closed     bool
	deadlineNS int64 // read deadline, ns since Epoch; 0 = none
}

var (
	_ transport.Conn          = (*conn)(nil)
	_ transport.EventConn     = (*conn)(nil)
	_ transport.EventListener = (*listener)(nil)
)

// newConnPair wires two endpoints together and registers them with their
// hosts so machine failures can reset them. It always runs on the accepting
// host's partition: pipes and conns come from that partition's arenas, and
// its connSeq stamps the pair. Seqs are strided by the partition count so
// they stay globally unique and deterministic (and reduce to the old dense
// numbering on single-kernel networks). When the dialer lives on another
// partition, its endpoint is registered by the dial verdict over there —
// host tables are only ever touched by their owning partition.
func newConnPair(lh *Host, laddr transport.Addr, rh *Host, raddr transport.Addr) (*conn, *conn) {
	nw := lh.nw
	pt := rh.np()
	toRemote := pt.pipes.Get()
	toRemote.dst = rh
	toLocal := pt.pipes.Get()
	toLocal.dst = lh
	cl := pt.conns.Get()
	cr := pt.conns.Get()
	cl.h, cl.peerHost, cl.rd, cl.wr = lh, rh, toLocal, toRemote
	cl.lport, cl.rport = int32(laddr.Port), int32(raddr.Port)
	cr.h, cr.peerHost, cr.rd, cr.wr = rh, lh, toRemote, toLocal
	cr.lport, cr.rport = int32(raddr.Port), int32(laddr.Port)
	parts := len(nw.parts)
	base := pt.connSeq
	pt.connSeq += 2
	cl.seq = base*parts + rh.part
	cr.seq = (base+1)*parts + rh.part
	rh.addConn(cr)
	if lh.part == rh.part {
		lh.addConn(cl)
	}
	return cl, cr
}

func (c *conn) LocalAddr() transport.Addr {
	return transport.Addr{Host: c.h.Host(), Port: int(c.lport)}
}
func (c *conn) RemoteAddr() transport.Addr {
	return transport.Addr{Host: c.peerHost.Host(), Port: int(c.rport)}
}

// SetReadDeadline implements transport.Conn. The deadline applies to Read
// calls made after it is set.
func (c *conn) SetReadDeadline(t time.Time) error {
	if t.IsZero() {
		c.deadlineNS = 0
		return nil
	}
	c.deadlineNS = int64(t.Sub(sim.Epoch))
	return nil
}

// Read implements transport.Conn. It blocks in virtual time until data,
// EOF, reset, or the read deadline.
func (c *conn) Read(b []byte) (int, error) {
	k := c.h.kern()
	for {
		if c.rd.unread() {
			seg := c.rd.segs[c.rd.head]
			n := copy(b, seg[c.rd.off:])
			c.rd.off += int32(n)
			if int(c.rd.off) == len(seg) {
				c.rd.segs[c.rd.head] = nil
				c.rd.head++
				c.rd.off = 0
				c.h.np().putBuf(seg) // fully consumed: recycle the payload
			}
			return n, nil
		}
		if c.rd.err != nil {
			return 0, c.rd.err
		}
		if c.closed {
			return 0, transport.ErrClosed
		}
		if c.rd.eof {
			return 0, io.EOF
		}
		if c.deadlineNS != 0 && int64(k.Since()) >= c.deadlineNS {
			return 0, transport.ErrTimeout
		}
		w := k.NewWaiter()
		if c.deadlineNS != 0 {
			w.WakeAfter(time.Duration(c.deadlineNS-int64(k.Since())), transport.ErrTimeout)
		}
		if c.rd.reader != nil {
			// A second concurrent reader is a protocol bug; fail loudly
			// rather than corrupting the stream.
			panic("simnet: concurrent Read on one connection")
		}
		c.rd.reader = w
		if v := w.Wait(); v != nil {
			c.rd.reader = nil
			if err, ok := v.(error); ok {
				return 0, err
			}
		}
	}
}

// TryRead implements transport.EventConn: it copies buffered data like
// Read but never parks, returning (0, nil) when nothing is available.
// The branch order mirrors Read exactly — data first, then reset,
// closed, EOF — so an event-driven reader observes the same verdicts in
// the same order a task-based one would.
func (c *conn) TryRead(b []byte) (int, error) {
	if c.rd.unread() {
		seg := c.rd.segs[c.rd.head]
		n := copy(b, seg[c.rd.off:])
		c.rd.off += int32(n)
		if int(c.rd.off) == len(seg) {
			c.rd.segs[c.rd.head] = nil
			c.rd.head++
			c.rd.off = 0
			c.h.np().putBuf(seg) // fully consumed: recycle the payload
		}
		return n, nil
	}
	if c.rd.err != nil {
		return 0, c.rd.err
	}
	if c.closed {
		return 0, transport.ErrClosed
	}
	if c.rd.eof {
		return 0, io.EOF
	}
	return 0, nil
}

// OnReadable implements transport.EventConn: it arms cb to run as one
// kernel event when the connection next has data, EOF, or an error.
// Arming while a task reader is parked (or vice versa) is a protocol
// bug, like two concurrent Reads.
func (c *conn) OnReadable(cb func()) {
	if c.rd.reader != nil || c.rd.onReadable != nil {
		panic("simnet: concurrent readers on one connection")
	}
	c.rd.onReadable = cb
}

// Write implements transport.Conn. The calling task blocks (in virtual
// time) until the sender's uplink has serialized the payload, modelling a
// small socket buffer; the payload is delivered to the peer after queueing
// plus propagation delay.
func (c *conn) Write(b []byte) (int, error) {
	k := c.h.kern()
	if c.closed {
		return 0, transport.ErrClosed
	}
	if c.rd.err != nil {
		return 0, c.rd.err
	}
	if len(b) == 0 {
		return 0, nil
	}
	np := c.h.np()
	np.stats.StreamMsgs++
	np.stats.StreamBytes += uint64(len(b))
	c.h.nw.ins.StreamMsgs.Inc()
	c.h.nw.ins.StreamBytes.Add(uint64(len(b)))

	data := np.getBuf(len(b))
	copy(data, b)
	var senderFree time.Time
	if c.h.nw.cross(c.h, c.peerHost) {
		// Sender half of the fluid model here; the receiver half (downlink
		// queueing, FIFO floor) runs on the peer's partition at arrival.
		senderFree = c.h.nw.upTimes(c.h, len(data))
		arrive := senderFree.Add(c.h.nw.delay(c.h.id, c.peerHost.id))
		c.h.nw.postData(c.h, c.wr, data, arrive)
	} else {
		var delivered time.Time
		senderFree, delivered = c.h.nw.sendTimes(c.h, c.peerHost, len(data))
		delivered = c.wr.deliverTime(delivered)
		c.h.nw.scheduleData(delivered, c.wr, data)
	}

	if wait := senderFree.Sub(k.Now()); wait > 0 {
		k.Sleep(wait)
	}
	if c.closed {
		return 0, transport.ErrClosed
	}
	if c.rd.err != nil {
		return 0, c.rd.err
	}
	return len(b), nil
}

// Close implements transport.Conn. The peer observes EOF after its data in
// flight has drained.
func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.h.removeConn(c)
	k := c.h.kern()
	arrive := k.Now().Add(c.h.nw.delay(c.h.id, c.peerHost.id))
	if c.h.nw.cross(c.h, c.peerHost) {
		// The FIFO floor against in-flight data is applied on the peer's
		// partition when the EOF arrives, not here.
		c.h.nw.postEOF(c.h, c.wr, arrive)
	} else {
		c.h.nw.scheduleEOF(c.wr.deliverTime(arrive), c.wr)
	}
	// Wake a parked local reader; it will observe closed.
	c.rd.wakeReader()
	return nil
}

// reset tears the connection down abruptly: both endpoints observe errors
// immediately (the behaviour of a peer process being killed).
func (c *conn) reset() {
	c.closed = true
	c.h.removeConn(c)
	c.rd.fail(transport.ErrClosed)
	if c.h.nw.cross(c.h, c.peerHost) {
		// The peer's pipe state belongs to its partition; the reset
		// travels like any other message (cold path, closure is fine).
		nw := c.h.nw
		wr := c.wr
		arrive := c.h.kern().Now().Add(nw.delay(c.h.id, c.peerHost.id))
		nw.pk.Post(c.h.part, c.peerHost.part, int64(arrive.Sub(sim.Epoch)), func() {
			wr.fail(transport.ErrClosed)
		})
		return
	}
	c.wr.fail(transport.ErrClosed)
}

// freeze blackholes the connection: the local (dying) endpoint errors,
// but the remote peer observes nothing — its writes vanish and its reads
// block until a deadline fires (silent-failure mode).
func (c *conn) freeze() {
	c.closed = true
	c.h.removeConn(c)
	c.rd.frozen = true
	c.wr.frozen = true
	// Wake a parked local reader; it observes the closed connection. An
	// event-driven reader is armed only when its buffer is dry, so the
	// callback observes the same ErrClosed verdict the waiter value
	// delivers here.
	if w := c.rd.reader; w != nil {
		c.rd.reader = nil
		w.Wake(transport.ErrClosed)
	} else {
		c.rd.wakeReader()
	}
}

// listener implements transport.Listener.
type listener struct {
	host    *Host
	port    int
	backlog []*conn
	waiters []sim.WaiterRef
	onAcc   func() // armed event-driven acceptor (EventListener), if any
	closed  bool
}

var _ transport.Listener = (*listener)(nil)

func (l *listener) Addr() transport.Addr {
	return transport.Addr{Host: l.host.Host(), Port: l.port}
}

// deliver hands an incoming connection to a parked acceptor or queues it.
func (l *listener) deliver(c *conn) {
	if l.closed {
		c.reset()
		return
	}
	for len(l.waiters) > 0 {
		r := l.waiters[0]
		l.waiters = l.waiters[1:]
		if r.Wake(c) {
			return
		}
	}
	l.backlog = append(l.backlog, c)
	if l.onAcc != nil {
		// One kernel event, exactly like the waiter Wake above, so
		// event-driven and task-based acceptors are schedule-identical.
		cb := l.onAcc
		l.onAcc = nil
		l.host.kern().AfterFunc(0, cb)
	}
}

// TryAccept implements transport.EventListener: it pops a queued
// connection without parking, returning (nil, nil) when none is waiting.
func (l *listener) TryAccept() (transport.Conn, error) {
	if l.closed {
		return nil, transport.ErrClosed
	}
	if len(l.backlog) > 0 {
		c := l.backlog[0]
		l.backlog = l.backlog[1:]
		return c, nil
	}
	return nil, nil
}

// OnAcceptable implements transport.EventListener: cb runs as one kernel
// event when the next connection arrives or the listener closes.
func (l *listener) OnAcceptable(cb func()) {
	l.onAcc = cb
}

// Accept implements transport.Listener.
func (l *listener) Accept() (transport.Conn, error) {
	for {
		if l.closed {
			return nil, transport.ErrClosed
		}
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			l.backlog = l.backlog[1:]
			return c, nil
		}
		w := l.host.kern().NewWaiter()
		l.waiters = append(l.waiters, w.Ref())
		switch v := w.Wait().(type) {
		case *conn:
			return v, nil
		case error:
			return nil, v
		}
	}
}

// Close implements transport.Listener.
func (l *listener) Close() error {
	if l.closed {
		return nil
	}
	l.close()
	l.host.removeListener(l)
	return nil
}

func (l *listener) close() {
	l.closed = true
	for _, r := range l.waiters {
		r.Wake(transport.ErrClosed)
	}
	l.waiters = nil
	if l.onAcc != nil {
		// The event-driven acceptor learns of the close the same way a
		// parked one does: one wake, then TryAccept reports ErrClosed.
		cb := l.onAcc
		l.onAcc = nil
		l.host.kern().AfterFunc(0, cb)
	}
	for _, c := range l.backlog {
		c.reset()
	}
	l.backlog = nil
}
