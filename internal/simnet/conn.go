package simnet

import (
	"io"
	"time"

	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/transport"
)

// pipe is one direction of a stream connection: bytes in flight toward, or
// buffered at, the destination host.
type pipe struct {
	nw  *Network
	dst *Host

	segs   [][]byte // delivered, unread segments; a ring over one backing array
	head   int      // index of the first unread segment
	off    int      // read offset into segs[head]
	eof    bool     // write end closed and EOF delivered
	err    error    // connection reset
	frozen bool     // blackholed: drop deliveries, never notify readers

	reader      *sim.Waiter // parked reader, if any
	lastDeliver time.Time   // FIFO floor for future deliveries
}

func (p *pipe) deliverTime(t time.Time) time.Time {
	if t.Before(p.lastDeliver) {
		t = p.lastDeliver
	}
	p.lastDeliver = t
	return t
}

func (p *pipe) deliverData(data []byte) {
	if p.eof || p.err != nil || p.frozen {
		p.dst.np().putBuf(data) // dropped: the payload buffer is free again
		return
	}
	if p.head == len(p.segs) {
		// Everything delivered so far was consumed: rewind onto the
		// same backing array instead of appending forever.
		p.segs = p.segs[:0]
		p.head = 0
	}
	p.segs = append(p.segs, data)
	p.wakeReader()
}

// unread reports whether the pipe holds delivered, unconsumed segments.
func (p *pipe) unread() bool { return p.head < len(p.segs) }

func (p *pipe) deliverEOF() {
	if p.eof || p.err != nil || p.frozen {
		return
	}
	p.eof = true
	p.wakeReader()
}

func (p *pipe) fail(err error) {
	if p.err != nil {
		return
	}
	p.err = err
	p.wakeReader()
}

func (p *pipe) wakeReader() {
	if p.reader != nil {
		w := p.reader
		p.reader = nil
		w.Wake(nil)
	}
}

// conn is one endpoint of a simulated stream connection.
type conn struct {
	h        *Host
	peerHost *Host
	local    transport.Addr
	remote   transport.Addr

	rd *pipe // data flowing toward us
	wr *pipe // data flowing toward the peer

	seq      int // creation order; fault-plane resets replay in seq order
	closed   bool
	deadline time.Time
}

var _ transport.Conn = (*conn)(nil)

// newConnPair wires two endpoints together and registers them with their
// hosts so machine failures can reset them. It always runs on the accepting
// host's partition: pipes and conns come from that partition's arenas, and
// its connSeq stamps the pair. Seqs are strided by the partition count so
// they stay globally unique and deterministic (and reduce to the old dense
// numbering on single-kernel networks). When the dialer lives on another
// partition, its endpoint is registered by the dial verdict over there —
// host tables are only ever touched by their owning partition.
func newConnPair(lh *Host, laddr transport.Addr, rh *Host, raddr transport.Addr) (*conn, *conn) {
	nw := lh.nw
	pt := rh.np()
	toRemote := pt.pipes.Get()
	toRemote.nw, toRemote.dst = nw, rh
	toLocal := pt.pipes.Get()
	toLocal.nw, toLocal.dst = nw, lh
	cl := pt.conns.Get()
	cr := pt.conns.Get()
	cl.h, cl.peerHost, cl.local, cl.remote, cl.rd, cl.wr = lh, rh, laddr, raddr, toLocal, toRemote
	cr.h, cr.peerHost, cr.local, cr.remote, cr.rd, cr.wr = rh, lh, raddr, laddr, toRemote, toLocal
	parts := len(nw.parts)
	base := pt.connSeq
	pt.connSeq += 2
	cl.seq = base*parts + rh.part
	cr.seq = (base+1)*parts + rh.part
	rh.addConn(cr)
	if lh.part == rh.part {
		lh.addConn(cl)
	}
	return cl, cr
}

func (c *conn) LocalAddr() transport.Addr  { return c.local }
func (c *conn) RemoteAddr() transport.Addr { return c.remote }

// SetReadDeadline implements transport.Conn. The deadline applies to Read
// calls made after it is set.
func (c *conn) SetReadDeadline(t time.Time) error {
	c.deadline = t
	return nil
}

// Read implements transport.Conn. It blocks in virtual time until data,
// EOF, reset, or the read deadline.
func (c *conn) Read(b []byte) (int, error) {
	k := c.h.kern()
	for {
		if c.rd.unread() {
			seg := c.rd.segs[c.rd.head]
			n := copy(b, seg[c.rd.off:])
			c.rd.off += n
			if c.rd.off == len(seg) {
				c.rd.segs[c.rd.head] = nil
				c.rd.head++
				c.rd.off = 0
				c.h.np().putBuf(seg) // fully consumed: recycle the payload
			}
			return n, nil
		}
		if c.rd.err != nil {
			return 0, c.rd.err
		}
		if c.closed {
			return 0, transport.ErrClosed
		}
		if c.rd.eof {
			return 0, io.EOF
		}
		if !c.deadline.IsZero() && !k.Now().Before(c.deadline) {
			return 0, transport.ErrTimeout
		}
		w := k.NewWaiter()
		if !c.deadline.IsZero() {
			w.WakeAfter(c.deadline.Sub(k.Now()), transport.ErrTimeout)
		}
		if c.rd.reader != nil {
			// A second concurrent reader is a protocol bug; fail loudly
			// rather than corrupting the stream.
			panic("simnet: concurrent Read on one connection")
		}
		c.rd.reader = w
		if v := w.Wait(); v != nil {
			c.rd.reader = nil
			if err, ok := v.(error); ok {
				return 0, err
			}
		}
	}
}

// Write implements transport.Conn. The calling task blocks (in virtual
// time) until the sender's uplink has serialized the payload, modelling a
// small socket buffer; the payload is delivered to the peer after queueing
// plus propagation delay.
func (c *conn) Write(b []byte) (int, error) {
	k := c.h.kern()
	if c.closed {
		return 0, transport.ErrClosed
	}
	if c.rd.err != nil {
		return 0, c.rd.err
	}
	if len(b) == 0 {
		return 0, nil
	}
	np := c.h.np()
	np.stats.StreamMsgs++
	np.stats.StreamBytes += uint64(len(b))
	c.h.nw.ins.StreamMsgs.Inc()
	c.h.nw.ins.StreamBytes.Add(uint64(len(b)))

	data := np.getBuf(len(b))
	copy(data, b)
	var senderFree time.Time
	if c.h.nw.cross(c.h, c.peerHost) {
		// Sender half of the fluid model here; the receiver half (downlink
		// queueing, FIFO floor) runs on the peer's partition at arrival.
		senderFree = c.h.nw.upTimes(c.h, len(data))
		arrive := senderFree.Add(c.h.nw.delay(c.h.id, c.peerHost.id))
		c.h.nw.postData(c.h, c.wr, data, arrive)
	} else {
		var delivered time.Time
		senderFree, delivered = c.h.nw.sendTimes(c.h, c.peerHost, len(data))
		delivered = c.wr.deliverTime(delivered)
		c.h.nw.scheduleData(delivered, c.wr, data)
	}

	if wait := senderFree.Sub(k.Now()); wait > 0 {
		k.Sleep(wait)
	}
	if c.closed {
		return 0, transport.ErrClosed
	}
	if c.rd.err != nil {
		return 0, c.rd.err
	}
	return len(b), nil
}

// Close implements transport.Conn. The peer observes EOF after its data in
// flight has drained.
func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	delete(c.h.conns, c)
	k := c.h.kern()
	arrive := k.Now().Add(c.h.nw.delay(c.h.id, c.peerHost.id))
	if c.h.nw.cross(c.h, c.peerHost) {
		// The FIFO floor against in-flight data is applied on the peer's
		// partition when the EOF arrives, not here.
		c.h.nw.postEOF(c.h, c.wr, arrive)
	} else {
		c.h.nw.scheduleEOF(c.wr.deliverTime(arrive), c.wr)
	}
	// Wake a parked local reader; it will observe closed.
	c.rd.wakeReader()
	return nil
}

// reset tears the connection down abruptly: both endpoints observe errors
// immediately (the behaviour of a peer process being killed).
func (c *conn) reset() {
	c.closed = true
	delete(c.h.conns, c)
	c.rd.fail(transport.ErrClosed)
	if c.h.nw.cross(c.h, c.peerHost) {
		// The peer's pipe state belongs to its partition; the reset
		// travels like any other message (cold path, closure is fine).
		nw := c.h.nw
		wr := c.wr
		arrive := c.h.kern().Now().Add(nw.delay(c.h.id, c.peerHost.id))
		nw.pk.Post(c.h.part, c.peerHost.part, int64(arrive.Sub(sim.Epoch)), func() {
			wr.fail(transport.ErrClosed)
		})
		return
	}
	c.wr.fail(transport.ErrClosed)
}

// freeze blackholes the connection: the local (dying) endpoint errors,
// but the remote peer observes nothing — its writes vanish and its reads
// block until a deadline fires (silent-failure mode).
func (c *conn) freeze() {
	c.closed = true
	delete(c.h.conns, c)
	c.rd.frozen = true
	c.wr.frozen = true
	// Wake a parked local reader; it observes the closed connection.
	if w := c.rd.reader; w != nil {
		c.rd.reader = nil
		w.Wake(transport.ErrClosed)
	}
}

// listener implements transport.Listener.
type listener struct {
	host    *Host
	port    int
	backlog []*conn
	waiters []sim.WaiterRef
	closed  bool
}

var _ transport.Listener = (*listener)(nil)

func (l *listener) Addr() transport.Addr {
	return transport.Addr{Host: l.host.Host(), Port: l.port}
}

// deliver hands an incoming connection to a parked acceptor or queues it.
func (l *listener) deliver(c *conn) {
	if l.closed {
		c.reset()
		return
	}
	for len(l.waiters) > 0 {
		r := l.waiters[0]
		l.waiters = l.waiters[1:]
		if r.Wake(c) {
			return
		}
	}
	l.backlog = append(l.backlog, c)
}

// Accept implements transport.Listener.
func (l *listener) Accept() (transport.Conn, error) {
	for {
		if l.closed {
			return nil, transport.ErrClosed
		}
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			l.backlog = l.backlog[1:]
			return c, nil
		}
		w := l.host.kern().NewWaiter()
		l.waiters = append(l.waiters, w.Ref())
		switch v := w.Wait().(type) {
		case *conn:
			return v, nil
		case error:
			return nil, v
		}
	}
}

// Close implements transport.Listener.
func (l *listener) Close() error {
	if l.closed {
		return nil
	}
	l.close()
	delete(l.host.listeners, l.port)
	return nil
}

func (l *listener) close() {
	l.closed = true
	for _, r := range l.waiters {
		r.Wake(transport.ErrClosed)
	}
	l.waiters = nil
	for _, c := range l.backlog {
		c.reset()
	}
	l.backlog = nil
}
