package hosting

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/splaykit/splay/internal/controller"
)

// Submissions arrive as serialized Scenarios (the splay package's
// Marshal format). The hosting plane reads the subset it places —
// application references, instance counts, run length — and ignores
// the rest: the testbed and collection planes belong to the resident
// platform, not the submission, and sandbox grants are fixed by the
// app registry the platform was started with. Because the ignored
// fields still travel, the same bytes run unchanged through a local
// splay.UnmarshalScenario — the hosted-vs-local byte-identity
// invariant needs exactly that.

// wireSubmission is the subset of the scenario document hosting reads.
type wireSubmission struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	Apps []struct {
		App      string          `json:"app"`
		Params   json.RawMessage `json:"params"`
		Nodes    int             `json:"nodes"`
		Superset float64         `json:"superset"`
		FullList bool            `json:"full_list"`
	} `json:"apps"`
	SettleNS   time.Duration `json:"settle_ns"`
	DurationNS time.Duration `json:"duration_ns"`
}

// submission is a decoded, validated job request.
type submission struct {
	name     string
	seed     int64
	specs    []controller.JobSpec
	nodes    int
	duration time.Duration
}

// decodeSubmission parses and validates a serialized scenario.
func decodeSubmission(data []byte) (submission, error) {
	var w wireSubmission
	if err := json.Unmarshal(data, &w); err != nil {
		return submission{}, fmt.Errorf("scenario does not parse: %w", err)
	}
	if len(w.Apps) == 0 {
		return submission{}, errors.New("scenario deploys no applications")
	}
	sub := submission{
		name:     w.Name,
		seed:     w.Seed,
		duration: w.SettleNS + w.DurationNS,
	}
	for i, a := range w.Apps {
		if a.App == "" {
			return submission{}, fmt.Errorf("app entry %d has no name", i)
		}
		nodes := a.Nodes
		if nodes <= 0 {
			nodes = 1
		}
		sub.specs = append(sub.specs, controller.JobSpec{
			App:      a.App,
			Params:   append([]byte(nil), a.Params...),
			Nodes:    nodes,
			Superset: a.Superset,
			FullList: a.FullList,
		})
		sub.nodes += nodes
	}
	if sub.duration < 0 {
		return submission{}, errors.New("scenario declares a negative duration")
	}
	return sub, nil
}

// JobView is a job's externally visible state.
type JobView struct {
	ID          string    `json:"id"`
	Seq         int64     `json:"seq"`
	Tenant      string    `json:"tenant"`
	Name        string    `json:"name,omitempty"`
	State       JobState  `json:"state"`
	Nodes       int       `json:"nodes"`
	Apps        []string  `json:"apps"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	Error       string    `json:"error,omitempty"`
}

// ResultAppView is one placed application inside a result.
type ResultAppView struct {
	App      string `json:"app"`
	Nodes    int    `json:"nodes"`
	Deployed int    `json:"deployed"`
}

// ResultView is a finished job's outcome: the structural facts a
// tenant compares against a local run of the same serialized scenario.
type ResultView struct {
	ID          string          `json:"id"`
	Tenant      string          `json:"tenant"`
	Name        string          `json:"name,omitempty"`
	Seed        int64           `json:"seed"`
	State       JobState        `json:"state"`
	Apps        []ResultAppView `json:"apps"`
	Frames      int64           `json:"frames"`
	QueueWaitNS time.Duration   `json:"queue_wait_ns"`
	Error       string          `json:"error,omitempty"`
}

// UsageView is a tenant's accounting snapshot.
type UsageView struct {
	Tenant       string `json:"tenant"`
	Quota        Quota  `json:"quota"`
	RunningJobs  int    `json:"running_jobs"`
	RunningNodes int    `json:"running_nodes"`
	QueuedJobs   int    `json:"queued_jobs"`
	TotalJobs    int    `json:"total_jobs"`
	TotalFrames  int64  `json:"total_frames"`
}

// viewLocked snapshots a job. Callers hold s.mu.
func (s *Service) viewLocked(j *job) JobView {
	apps := make([]string, len(j.specs))
	for i, sp := range j.specs {
		apps[i] = sp.App
	}
	return JobView{
		ID:          j.id,
		Seq:         j.seq,
		Tenant:      j.ten.Name,
		Name:        j.name,
		State:       j.state,
		Nodes:       j.nodes,
		Apps:        apps,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
		Error:       j.errMsg,
	}
}

// resultLocked snapshots a terminal job's result. Callers hold s.mu.
func (s *Service) resultLocked(j *job) ResultView {
	rv := ResultView{
		ID:     j.id,
		Tenant: j.ten.Name,
		Name:   j.name,
		Seed:   j.seed,
		State:  j.state,
		Frames: j.frames,
		Error:  j.errMsg,
	}
	if !j.startedAt.IsZero() {
		rv.QueueWaitNS = j.startedAt.Sub(j.submittedAt)
	}
	for i, sp := range j.specs {
		av := ResultAppView{App: sp.App, Nodes: sp.Nodes}
		if i < len(j.deployed) {
			av.Deployed = j.deployed[i]
		}
		rv.Apps = append(rv.Apps, av)
	}
	return rv
}
