// Package hosting turns the controller into a resident multi-tenant
// platform: the §4 splayweb vision. One long-lived daemon fleet serves
// many users; tenants authenticate with per-tenant keys (the metric
// aggregator's key-auth pattern), submit serialized Scenarios, and the
// service queues, fair-share places, watches and kills their jobs on
// the shared population. Placement rides the controller's existing
// deployment machinery, so hosted jobs inherit superset probing,
// re-placement on deploy failure and the sandbox caps carried by each
// app spec.
//
// The service is built over core.Runtime and a Fleet interface, so the
// same state machine runs in virtual time on a simulated fleet (the
// hostplane experiment drives ≥3 tenants over 5,000 simulated daemons)
// and in real time behind splayd -host.
//
// Fairness is deterministic and starvation-free: tenants' queues are
// FIFO, the next job dispatched is the head-of-line job of the tenant
// with the fewest placed nodes (ties to submission order), and when
// that candidate does not fit the remaining capacity dispatch stops
// entirely — a large job waits at the head of the line instead of
// being overtaken forever by small ones.
package hosting

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/config"
	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/metrics"
)

// Fleet is the shared daemon population jobs are placed onto.
// *controller.Controller implements it.
type Fleet interface {
	Submit(controller.JobSpec) (*controller.JobStatus, error)
	StopJob(id string) error
	Daemons() int
	FramesSent() int64
}

var _ Fleet = (*controller.Controller)(nil)

// Quota bounds one tenant's share of the platform. Zero fields are
// unlimited.
type Quota struct {
	MaxNodes  int `json:"max_nodes,omitempty"`  // placed instances at once
	MaxJobs   int `json:"max_jobs,omitempty"`   // placed jobs at once
	MaxQueued int `json:"max_queued,omitempty"` // jobs waiting in the queue
}

// Tenant is one account: a name, its secret key, and its quota.
type Tenant struct {
	Name  string
	Key   string
	Quota Quota
}

// Config parameterizes the service.
type Config struct {
	// Capacity is the instance budget jobs are packed into. 0 sizes it
	// to the fleet's live daemon count at each dispatch.
	Capacity int
	// DeployAttempts is how many times a job is re-queued after a
	// *controller.DeployError before failing. Default 2.
	DeployAttempts int
	// RetryDelay spaces re-placement attempts after a deploy failure,
	// giving a churning population time to re-register. Default 1s.
	RetryDelay time.Duration
	// DefaultDuration runs jobs that declare none. Default 30s.
	DefaultDuration time.Duration
	// MaxDuration clamps declared job durations. 0 leaves them alone.
	MaxDuration time.Duration
	// Metrics receives per-tenant instruments (host.deploys.<tenant>,
	// host.frames.<tenant>, …). Nil disables instrumentation.
	Metrics *metrics.Registry
	// Catalog validates submissions' application references and typed
	// parameters at admission: bad apps and out-of-range params are
	// rejected as bad_scenario with the offending field, before the job
	// ever queues. It also enables config-document submissions (the
	// YAML-flavored scenario language), compiled at the door to the same
	// canonical wire form JSON submissions arrive in. Nil skips
	// validation and declines documents.
	Catalog *config.Catalog
}

// ErrorCode classifies a JobError.
type ErrorCode string

// Job error codes.
const (
	ErrAuth        ErrorCode = "auth"         // unknown or wrong key
	ErrQuota       ErrorCode = "quota"        // tenant quota exceeded
	ErrCapacity    ErrorCode = "capacity"     // job can never fit the platform
	ErrBadScenario ErrorCode = "bad_scenario" // submission did not parse or validate
	ErrUnknownJob  ErrorCode = "unknown_job"  // no such job for this tenant
	ErrPending     ErrorCode = "pending"      // result requested before the job finished
	ErrDeploy      ErrorCode = "deploy"       // placement failed after all attempts
	ErrClosed      ErrorCode = "closed"       // service shut down
)

// JobError is the typed error every hosting operation returns. Field
// names the offending scenario field on bad_scenario rejections (e.g.
// "apps[0].params.bits") so tenants can fix documents without reading
// server logs.
type JobError struct {
	Code   ErrorCode `json:"code"`
	Job    string    `json:"job,omitempty"`
	Tenant string    `json:"tenant,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Field  string    `json:"field,omitempty"`
	Err    error     `json:"-"`
}

func (e *JobError) Error() string {
	msg := "hosting: " + string(e.Code)
	if e.Job != "" {
		msg += " " + e.Job
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *JobError) Unwrap() error { return e.Err }

// JobState is a hosted job's lifecycle position.
type JobState string

// Job states: Queued → Deploying → Running → one of the terminals.
const (
	Queued    JobState = "queued"
	Deploying JobState = "deploying"
	Running   JobState = "running"
	Done      JobState = "done"
	Failed    JobState = "failed"
	Killed    JobState = "killed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == Done || s == Failed || s == Killed }

// tenant is the service's account state.
type tenant struct {
	Tenant
	runningNodes int // placed instances (deploying + running)
	runningJobs  int
	queuedJobs   int
	totalJobs    int
	totalFrames  int64

	deploys, deployFails, frames *metrics.Counter
	nodesG, queuedG              *metrics.Gauge
}

// job is one submission moving through the state machine.
type job struct {
	id       string
	seq      int64
	ten      *tenant
	name     string // scenario name
	seed     int64
	specs    []controller.JobSpec
	duration time.Duration
	nodes    int // total instances across specs

	state       JobState
	attempts    int
	killed      bool
	acquired    bool // holds tenant/platform node accounting
	ctlJobs     []string
	deployed    []int // instances placed, per spec
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	frames0     int64
	frames      int64
	errMsg      string
}

// Service is the resident hosting plane.
type Service struct {
	rt    core.Runtime
	fleet Fleet
	cfg   Config

	mu        sync.Mutex
	tenants   map[string]*tenant // by name
	byKey     map[string]*tenant
	jobs      map[string]*job
	queue     []*job // waiting, ascending seq
	seq       int64
	usedNodes int
	closed    bool

	rejects *metrics.Counter
}

// New builds a service over a runtime and a fleet. Add tenants with
// AddTenant before serving submissions.
func New(rt core.Runtime, fleet Fleet, cfg Config) *Service {
	if cfg.DeployAttempts == 0 {
		cfg.DeployAttempts = 2
	}
	if cfg.DefaultDuration == 0 {
		cfg.DefaultDuration = 30 * time.Second
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = time.Second
	}
	return &Service{
		rt:      rt,
		fleet:   fleet,
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		byKey:   make(map[string]*tenant),
		jobs:    make(map[string]*job),
		rejects: cfg.Metrics.Counter("host.rejects"),
	}
}

// AddTenant registers an account. Names and keys must be unique and
// non-empty.
func (s *Service) AddTenant(t Tenant) error {
	if t.Name == "" || t.Key == "" {
		return errors.New("hosting: tenant needs a name and a key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[t.Name]; dup {
		return fmt.Errorf("hosting: duplicate tenant %q", t.Name)
	}
	if _, dup := s.byKey[t.Key]; dup {
		return fmt.Errorf("hosting: tenant %q reuses another tenant's key", t.Name)
	}
	ten := &tenant{
		Tenant:      t,
		deploys:     s.cfg.Metrics.Counter("host.deploys." + t.Name),
		deployFails: s.cfg.Metrics.Counter("host.deploy_fails." + t.Name),
		frames:      s.cfg.Metrics.Counter("host.frames." + t.Name),
		nodesG:      s.cfg.Metrics.Gauge("host.nodes." + t.Name),
		queuedG:     s.cfg.Metrics.Gauge("host.queued." + t.Name),
	}
	s.tenants[t.Name] = ten
	s.byKey[t.Key] = ten
	return nil
}

// authorize resolves a key to its tenant. Callers hold no lock.
func (s *Service) authorize(key string) (*tenant, *JobError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ten, ok := s.byKey[key]
	if !ok {
		s.rejects.Inc()
		return nil, &JobError{Code: ErrAuth, Detail: "unknown key"}
	}
	return ten, nil
}

// capacity is the instance budget. Callers hold s.mu.
func (s *Service) capacity() int {
	if s.cfg.Capacity > 0 {
		return s.cfg.Capacity
	}
	return s.fleet.Daemons()
}

// Submit parses a serialized scenario, admits it against the tenant's
// quota and enqueues it. Submissions arrive as wire JSON or — when the
// service has a catalog — as config documents, compiled at admission to
// the identical wire form; either way the catalog validates every
// application reference and typed parameter before the job queues.
// Returns the queued job's view; placement happens asynchronously on
// the runtime.
func (s *Service) Submit(key string, scenario []byte) (JobView, error) {
	ten, jerr := s.authorize(key)
	if jerr != nil {
		return JobView{}, jerr
	}
	if config.IsDocument(scenario) {
		if s.cfg.Catalog == nil {
			s.rejects.Inc()
			return JobView{}, &JobError{Code: ErrBadScenario, Tenant: ten.Name,
				Detail: "this platform accepts wire JSON only (no catalog configured for config documents)"}
		}
		wire, perr := config.Compile(scenario, config.Options{Catalog: s.cfg.Catalog})
		if perr != nil {
			s.rejects.Inc()
			return JobView{}, &JobError{Code: ErrBadScenario, Tenant: ten.Name,
				Field: perr.Path, Err: perr}
		}
		scenario = wire
	} else if s.cfg.Catalog != nil {
		if perr := config.ValidateWire(scenario, s.cfg.Catalog); perr != nil {
			s.rejects.Inc()
			return JobView{}, &JobError{Code: ErrBadScenario, Tenant: ten.Name,
				Field: perr.Path, Err: perr}
		}
	}
	req, err := decodeSubmission(scenario)
	if err != nil {
		s.rejects.Inc()
		return JobView{}, &JobError{Code: ErrBadScenario, Tenant: ten.Name, Err: err}
	}
	dur := req.duration
	if dur == 0 {
		dur = s.cfg.DefaultDuration
	}
	if s.cfg.MaxDuration > 0 && dur > s.cfg.MaxDuration {
		dur = s.cfg.MaxDuration
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobView{}, &JobError{Code: ErrClosed, Tenant: ten.Name}
	}
	if cap := s.capacity(); req.nodes > cap {
		s.mu.Unlock()
		s.rejects.Inc()
		return JobView{}, &JobError{Code: ErrCapacity, Tenant: ten.Name,
			Detail: fmt.Sprintf("%d instances exceed the platform's %d", req.nodes, cap)}
	}
	if q := ten.Quota; (q.MaxNodes > 0 && req.nodes > q.MaxNodes) ||
		(q.MaxQueued > 0 && ten.queuedJobs >= q.MaxQueued) {
		s.mu.Unlock()
		s.rejects.Inc()
		return JobView{}, &JobError{Code: ErrQuota, Tenant: ten.Name,
			Detail: fmt.Sprintf("%d instances against quota %+v with %d queued", req.nodes, q, ten.queuedJobs)}
	}
	s.seq++
	j := &job{
		id:          fmt.Sprintf("j%d", s.seq),
		seq:         s.seq,
		ten:         ten,
		name:        req.name,
		seed:        req.seed,
		specs:       req.specs,
		duration:    dur,
		nodes:       req.nodes,
		state:       Queued,
		submittedAt: s.rt.Now(),
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	ten.queuedJobs++
	ten.totalJobs++
	ten.queuedG.Add(1)
	view := s.viewLocked(j)
	s.mu.Unlock()

	s.dispatch()
	return view, nil
}

// dispatch places every admissible queued job. Deterministic fair
// share: among tenants' head-of-line jobs (each tenant throttled by its
// own quota), the tenant with the fewest placed nodes goes first, ties
// broken by submission order; if the chosen job does not fit the free
// capacity, dispatch stops — nothing overtakes the head of the line.
func (s *Service) dispatch() {
	var starting []*job
	s.mu.Lock()
	for !s.closed {
		var pick *job
		seen := make(map[*tenant]bool, len(s.tenants))
		for _, j := range s.queue {
			if seen[j.ten] {
				continue
			}
			seen[j.ten] = true // head of this tenant's line
			if q := j.ten.Quota; q.MaxJobs > 0 && j.ten.runningJobs >= q.MaxJobs {
				continue
			}
			if q := j.ten.Quota; q.MaxNodes > 0 && j.ten.runningNodes+j.nodes > q.MaxNodes {
				continue
			}
			if pick == nil || j.ten.runningNodes < pick.ten.runningNodes ||
				(j.ten.runningNodes == pick.ten.runningNodes && j.seq < pick.seq) {
				pick = j
			}
		}
		if pick == nil || s.usedNodes+pick.nodes > s.capacity() {
			break
		}
		s.removeQueued(pick)
		pick.state = Deploying
		pick.acquired = true
		pick.ten.queuedJobs--
		pick.ten.queuedG.Add(-1)
		pick.ten.runningJobs++
		pick.ten.runningNodes += pick.nodes
		pick.ten.nodesG.Add(int64(pick.nodes))
		s.usedNodes += pick.nodes
		starting = append(starting, pick)
	}
	s.mu.Unlock()
	for _, j := range starting {
		j := j
		s.rt.Go(func() { s.runJob(j) })
	}
}

// removeQueued drops a job from the wait queue. Callers hold s.mu.
func (s *Service) removeQueued(j *job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// runJob drives one dispatched job: place every app spec on the fleet,
// run for the declared duration, release. Runs as a runtime task.
func (s *Service) runJob(j *job) {
	s.mu.Lock()
	j.frames0 = s.fleet.FramesSent()
	specs := j.specs
	s.mu.Unlock()

	var placed []string
	var counts []int
	fail := func(err error) {
		for _, id := range placed {
			s.fleet.StopJob(id) //nolint:errcheck
		}
		s.mu.Lock()
		if j.killed {
			s.mu.Unlock()
			s.finish(j, Killed, "")
			return
		}
		j.attempts++
		var derr *controller.DeployError
		if errors.As(err, &derr) && j.attempts < s.cfg.DeployAttempts {
			// The population churned underneath us: hand the nodes
			// back and requeue at our original position.
			j.state = Queued
			j.acquired = false
			j.ctlJobs, j.deployed = nil, nil
			j.ten.runningJobs--
			j.ten.runningNodes -= j.nodes
			j.ten.nodesG.Add(-int64(j.nodes))
			j.ten.queuedJobs++
			j.ten.queuedG.Add(1)
			s.usedNodes -= j.nodes
			s.queue = append(s.queue, j)
			sort.Slice(s.queue, func(a, b int) bool { return s.queue[a].seq < s.queue[b].seq })
			s.mu.Unlock()
			s.rt.After(s.cfg.RetryDelay, func() { s.rt.Go(s.dispatch) })
			return
		}
		j.ten.deployFails.Inc()
		s.mu.Unlock()
		s.finish(j, Failed, err.Error())
	}

	for _, spec := range specs {
		st, err := s.fleet.Submit(spec)
		if err != nil {
			fail(err)
			return
		}
		placed = append(placed, st.ID)
		counts = append(counts, len(st.Deployed))
		s.mu.Lock()
		killed := j.killed
		s.mu.Unlock()
		if killed {
			for _, id := range placed {
				s.fleet.StopJob(id) //nolint:errcheck
			}
			s.finish(j, Killed, "")
			return
		}
	}

	s.mu.Lock()
	j.state = Running
	j.ctlJobs = placed
	j.deployed = counts
	j.startedAt = s.rt.Now()
	// Frame attribution is a delta over the placement window; overlapping
	// placements by other tenants share the fleet counter, so this is an
	// upper bound, not an exact split.
	j.frames = s.fleet.FramesSent() - j.frames0
	j.ten.totalFrames += j.frames
	j.ten.deploys.Inc()
	j.ten.frames.Add(uint64(j.frames))
	killed := j.killed
	dur := j.duration
	s.mu.Unlock()
	if killed {
		s.finish(j, Killed, "")
		return
	}

	s.rt.Sleep(dur)
	s.finish(j, Done, "")
}

// finish moves a job to a terminal state exactly once, stops its
// controller jobs and hands its nodes back to the dispatcher.
func (s *Service) finish(j *job, state JobState, errMsg string) {
	s.mu.Lock()
	if j.state.Terminal() {
		s.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.finishedAt = s.rt.Now()
	ctl := j.ctlJobs
	if j.acquired {
		j.acquired = false
		j.ten.runningJobs--
		j.ten.runningNodes -= j.nodes
		j.ten.nodesG.Add(-int64(j.nodes))
		s.usedNodes -= j.nodes
	}
	s.mu.Unlock()
	for _, id := range ctl {
		s.fleet.StopJob(id) //nolint:errcheck
	}
	s.dispatch()
}

// lookup resolves a job for a tenant. Jobs are invisible across
// tenants: a foreign id reads as unknown. Callers hold no lock.
func (s *Service) lookup(ten *tenant, id string) (*job, *JobError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.ten != ten {
		return nil, &JobError{Code: ErrUnknownJob, Job: id, Tenant: ten.Name}
	}
	return j, nil
}

// Job returns one job's view.
func (s *Service) Job(key, id string) (JobView, error) {
	ten, jerr := s.authorize(key)
	if jerr != nil {
		return JobView{}, jerr
	}
	j, jerr := s.lookup(ten, id)
	if jerr != nil {
		return JobView{}, jerr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewLocked(j), nil
}

// Jobs lists the tenant's jobs in submission order.
func (s *Service) Jobs(key string) ([]JobView, error) {
	ten, jerr := s.authorize(key)
	if jerr != nil {
		return nil, jerr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobView
	for _, j := range s.jobs {
		if j.ten == ten {
			out = append(out, s.viewLocked(j))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out, nil
}

// Result returns a finished job's result view; a job still moving
// reports ErrPending.
func (s *Service) Result(key, id string) (ResultView, error) {
	ten, jerr := s.authorize(key)
	if jerr != nil {
		return ResultView{}, jerr
	}
	j, jerr := s.lookup(ten, id)
	if jerr != nil {
		return ResultView{}, jerr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !j.state.Terminal() {
		return ResultView{}, &JobError{Code: ErrPending, Job: id, Tenant: ten.Name,
			Detail: string(j.state)}
	}
	return s.resultLocked(j), nil
}

// Kill removes a queued job or stops a placed one. Killing a job in a
// terminal state is a no-op.
func (s *Service) Kill(key, id string) error {
	ten, jerr := s.authorize(key)
	if jerr != nil {
		return jerr
	}
	j, jerr := s.lookup(ten, id)
	if jerr != nil {
		return jerr
	}
	s.mu.Lock()
	switch {
	case j.state.Terminal():
		s.mu.Unlock()
		return nil
	case j.state == Queued:
		s.removeQueued(j)
		j.state = Killed
		j.finishedAt = s.rt.Now()
		j.ten.queuedJobs--
		j.ten.queuedG.Add(-1)
		s.mu.Unlock()
		s.dispatch()
		return nil
	default: // deploying or running
		j.killed = true
		running := j.state == Running
		s.mu.Unlock()
		if running {
			s.finish(j, Killed, "")
		}
		// A deploying job is finished by its own runJob task when the
		// in-flight placement returns.
		return nil
	}
}

// Usage reports a tenant's accounting. The key must belong to the named
// tenant — usage is not visible across accounts.
func (s *Service) Usage(key, name string) (UsageView, error) {
	ten, jerr := s.authorize(key)
	if jerr != nil {
		return UsageView{}, jerr
	}
	if ten.Name != name {
		return UsageView{}, &JobError{Code: ErrAuth, Tenant: name, Detail: "key does not own tenant"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return UsageView{
		Tenant:       ten.Name,
		Quota:        ten.Quota,
		RunningJobs:  ten.runningJobs,
		RunningNodes: ten.runningNodes,
		QueuedJobs:   ten.queuedJobs,
		TotalJobs:    ten.totalJobs,
		TotalFrames:  ten.totalFrames,
	}, nil
}

// Close stops admissions and kills every live job.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	var live []*job
	for _, j := range s.jobs {
		if !j.state.Terminal() {
			live = append(live, j)
		}
	}
	queued := s.queue
	s.queue = nil
	for _, j := range queued {
		j.ten.queuedJobs--
		j.ten.queuedG.Add(-1)
	}
	s.mu.Unlock()
	for _, j := range live {
		s.mu.Lock()
		j.killed = true
		s.mu.Unlock()
		s.finish(j, Killed, "")
	}
}
