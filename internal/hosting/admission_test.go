package hosting

// Admission-time config validation: the hosting plane accepts scenario
// documents (compiled at the door to canonical wire bytes) and
// validates plain wire submissions against the app catalog, rejecting
// both as typed bad_scenario errors carrying the offending field.

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/config"
)

// sleeperCatalog declares the test registry's app so documents can
// reference it.
func sleeperCatalog(t *testing.T) *config.Catalog {
	t.Helper()
	c := config.NewCatalog()
	if err := c.Register(config.AppSchema{
		Name: "sleeper",
		Params: []config.Param{
			{Name: "depth", Kind: config.KindInt, Min: 1, Max: 8, Bounded: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAdmissionDocument submits a YAML scenario document through the
// service: it compiles at admission and runs exactly like its wire
// twin.
func TestAdmissionDocument(t *testing.T) {
	fl := newSimFleet(t, 6)
	svc := New(fl.rt, fl.ctl, Config{Catalog: sleeperCatalog(t)})
	if err := svc.AddTenant(Tenant{Name: "dora", Key: "kd"}); err != nil {
		t.Fatal(err)
	}
	doc := []byte("name: docjob\napps:\n  - app: sleeper\n    nodes: 4\nduration: 10s\n")
	var view JobView
	fl.k.Go(func() {
		var err error
		if view, err = svc.Submit("kd", doc); err != nil {
			t.Errorf("document submit: %v", err)
		}
	})
	fl.k.RunFor(time.Minute)
	res, err := svc.Result("kd", view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != Done || len(res.Apps) != 1 || res.Apps[0].Deployed != 4 {
		t.Errorf("document job settled as %+v", res)
	}
}

// TestAdmissionRejections pins the typed bad_scenario rejections:
// malformed documents, out-of-range params, unknown apps in wire JSON —
// each carrying the offending field — and the no-catalog policy.
func TestAdmissionRejections(t *testing.T) {
	fl := newSimFleet(t, 4)
	svc := New(fl.rt, fl.ctl, Config{Catalog: sleeperCatalog(t)})
	if err := svc.AddTenant(Tenant{Name: "eve", Key: "ke"}); err != nil {
		t.Fatal(err)
	}
	field := func(err error) string {
		var jerr *JobError
		if !errors.As(err, &jerr) {
			t.Fatalf("err = %v (%T), want *JobError", err, err)
		}
		if jerr.Code != ErrBadScenario {
			t.Fatalf("code = %s, want %s (%v)", jerr.Code, ErrBadScenario, err)
		}
		return jerr.Field
	}

	_, err := svc.Submit("ke", []byte("apps:\n  - app: sleeper\n    params:\n      depth: 99\n"))
	if got := field(err); got != "apps[0].params.depth" {
		t.Errorf("out-of-range document field = %q (%v)", got, err)
	}
	_, err = svc.Submit("ke", []byte("apps:\n  - app: nosuch\n"))
	if got := field(err); got != "apps[0].app" {
		t.Errorf("unknown-app document field = %q (%v)", got, err)
	}
	_, err = svc.Submit("ke", []byte("apps: oops\n"))
	if got := field(err); got != "apps" {
		t.Errorf("malformed document field = %q (%v)", got, err)
	}

	// Wire JSON is validated against the same catalog.
	_, err = svc.Submit("ke", []byte(`{"apps":[{"app":"nosuch","nodes":2}]}`))
	if got := field(err); got != "apps[0]" {
		t.Errorf("unknown-app wire field = %q (%v)", got, err)
	}
	_, err = svc.Submit("ke", []byte(`{"apps":[{"app":"sleeper","params":{"depth":0},"nodes":2}]}`))
	if got := field(err); got != "apps[0].params.depth" {
		t.Errorf("out-of-range wire field = %q (%v)", got, err)
	}

	// Without a catalog, documents are declined outright (nothing can
	// compile them) and wire JSON passes unvalidated — the pre-config
	// behavior, unchanged.
	bare := New(fl.rt, fl.ctl, Config{})
	if err := bare.AddTenant(Tenant{Name: "frank", Key: "kf"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Submit("kf", []byte("apps:\n  - app: sleeper\n")); err == nil || code(t, err) != ErrBadScenario {
		t.Errorf("catalog-less document submit = %v, want bad_scenario", err)
	}
	fl.k.Go(func() {
		if _, err := bare.Submit("kf", []byte(`{"apps":[{"app":"sleeper","nodes":1}],"duration_ns":1000000000}`)); err != nil {
			t.Errorf("catalog-less wire submit: %v", err)
		}
	})
	fl.k.RunFor(time.Second)
}

// TestFieldOverHTTP round-trips the offending field through the HTTP
// error body: writeErr serializes it, DecodeError recovers it.
func TestFieldOverHTTP(t *testing.T) {
	t.Parallel()
	rec := httptest.NewRecorder()
	writeErr(rec, &JobError{Code: ErrBadScenario, Tenant: "eve",
		Field: "apps[0].params.depth", Err: &config.Error{Code: config.ErrOutOfRange,
			Path: "apps[0].params.depth", Line: 4, Col: 14, Msg: "9 is outside 1..8"}})
	if rec.Code != 400 {
		t.Errorf("status = %d, want 400", rec.Code)
	}
	jerr := DecodeError(rec.Code, rec.Body.Bytes())
	if jerr.Code != ErrBadScenario || jerr.Field != "apps[0].params.depth" {
		t.Errorf("decoded = %+v, want bad_scenario with field", jerr)
	}
	if jerr.Detail == "" {
		t.Errorf("decoded detail is empty; the config error text should travel")
	}
}
