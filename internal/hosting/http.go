package hosting

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
)

// maxScenarioBytes bounds one submission body.
const maxScenarioBytes = 4 << 20

// Handler exposes the service over HTTP/JSON:
//
//	POST   /jobs                submit a serialized Scenario
//	GET    /jobs                list the tenant's jobs
//	GET    /jobs/{id}           one job's state
//	GET    /jobs/{id}/result    a finished job's result
//	DELETE /jobs/{id}           kill (or dequeue) a job
//	GET    /tenants/{t}/usage   the tenant's accounting
//
// Every route authenticates the tenant key from "Authorization: Bearer
// <key>" (or the X-Splay-Key header). Errors are typed JobErrors
// serialized as {"error":{"code":...,"detail":...}} with a matching
// status code.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBytes))
		if err != nil {
			writeErr(w, &JobError{Code: ErrBadScenario, Detail: "unreadable body"})
			return
		}
		view, jerr := s.Submit(clientKey(r), body)
		if jerr != nil {
			writeErr(w, jerr)
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		views, err := s.Jobs(clientKey(r))
		if err != nil {
			writeErr(w, err)
			return
		}
		if views == nil {
			views = []JobView{}
		}
		writeJSON(w, http.StatusOK, views)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, err := s.Job(clientKey(r), r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Result(clientKey(r), r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Kill(clientKey(r), r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "killed"})
	})
	mux.HandleFunc("GET /tenants/{t}/usage", func(w http.ResponseWriter, r *http.Request) {
		usage, err := s.Usage(clientKey(r), r.PathValue("t"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, usage)
	})
	return mux
}

// clientKey extracts the tenant key from a request.
func clientKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return key
		}
	}
	return r.Header.Get("X-Splay-Key")
}

// httpStatus maps a JobError code to its status line.
func httpStatus(code ErrorCode) int {
	switch code {
	case ErrAuth:
		return http.StatusUnauthorized
	case ErrQuota:
		return http.StatusTooManyRequests
	case ErrCapacity:
		return http.StatusUnprocessableEntity
	case ErrBadScenario:
		return http.StatusBadRequest
	case ErrUnknownJob:
		return http.StatusNotFound
	case ErrPending:
		return http.StatusConflict
	case ErrClosed:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// errBody is the error response document.
type errBody struct {
	Error struct {
		Code   ErrorCode `json:"code"`
		Job    string    `json:"job,omitempty"`
		Tenant string    `json:"tenant,omitempty"`
		Detail string    `json:"detail,omitempty"`
		Field  string    `json:"field,omitempty"`
	} `json:"error"`
}

// DecodeError parses an error response body back into a typed
// *JobError — the client half of writeErr.
func DecodeError(status int, body []byte) *JobError {
	var eb errBody
	if json.Unmarshal(body, &eb) == nil && eb.Error.Code != "" {
		return &JobError{Code: eb.Error.Code, Job: eb.Error.Job,
			Tenant: eb.Error.Tenant, Detail: eb.Error.Detail, Field: eb.Error.Field}
	}
	return &JobError{Code: ErrorCode("http"), Detail: http.StatusText(status)}
}

func writeErr(w http.ResponseWriter, err error) {
	var jerr *JobError
	if !errors.As(err, &jerr) {
		jerr = &JobError{Code: ErrorCode("internal"), Detail: err.Error()}
	}
	var eb errBody
	eb.Error.Code = jerr.Code
	eb.Error.Job = jerr.Job
	eb.Error.Tenant = jerr.Tenant
	eb.Error.Detail = jerr.Detail
	eb.Error.Field = jerr.Field
	if jerr.Err != nil {
		if eb.Error.Detail != "" {
			eb.Error.Detail += ": "
		}
		eb.Error.Detail += jerr.Err.Error()
	}
	writeJSON(w, httpStatus(jerr.Code), eb)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}
