package hosting

// Hosting-plane tests on a shared simulated fleet: multi-tenant
// placement, deterministic fair share, quota/auth rejection as typed
// errors (never a hang — everything runs in bounded virtual time),
// kill semantics, and re-placement after the population churns.

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

// sleepRegistry registers one deployable app that idles until killed.
func sleepRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.MustRegister("sleeper", func(params json.RawMessage) (core.App, error) {
		return core.AppFunc(func(ctx *core.AppContext) error {
			for !ctx.Killed() {
				ctx.Sleep(time.Second)
			}
			return nil
		}), nil
	})
	return reg
}

type simFleet struct {
	k   *sim.Kernel
	rt  *core.SimRuntime
	ctl *controller.Controller
}

// newSimFleet wires a controller on host 0 and n daemons on hosts 1..n,
// runs until everyone registered, and returns the fleet.
func newSimFleet(t *testing.T, n int) *simFleet {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 30 * time.Millisecond}, n+1, 1)
	rt := core.NewSimRuntime(k, 1)
	reg := sleepRegistry()
	ctl := controller.New(rt, nw.Node(0), controller.DefaultConfig())
	k.Go(func() {
		if err := ctl.Start(); err != nil {
			t.Errorf("controller: %v", err)
		}
	})
	ctlAddr := transport.Addr{Host: "n0", Port: controller.DefaultConfig().Port}
	for i := 1; i <= n; i++ {
		d := daemon.New(rt, nw.Node(i), reg, daemon.DefaultConfig(simnet.HostName(i)), nil)
		k.GoAfter(time.Duration(i)*100*time.Millisecond, func() {
			if err := d.Connect(ctlAddr); err != nil {
				t.Errorf("daemon connect: %v", err)
			}
		})
	}
	k.RunFor(30 * time.Second)
	if got := ctl.Daemons(); got != n {
		t.Fatalf("fleet has %d daemons, want %d", got, n)
	}
	return &simFleet{k: k, rt: rt, ctl: ctl}
}

// scenarioJSON builds a minimal serialized scenario for submission.
func scenarioJSON(name string, nodes int, dur time.Duration) []byte {
	return []byte(fmt.Sprintf(`{"name":%q,"apps":[{"app":"sleeper","nodes":%d}],"duration_ns":%d}`,
		name, nodes, dur))
}

// code unwraps the typed error every hosting operation must return.
func code(t *testing.T, err error) ErrorCode {
	t.Helper()
	var jerr *JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	return jerr.Code
}

// TestMultiTenantPlacement runs two tenants' overlapping jobs on one
// shared fleet and checks both place, both finish, and usage
// accounting tracks the overlap.
func TestMultiTenantPlacement(t *testing.T) {
	fl := newSimFleet(t, 12)
	svc := New(fl.rt, fl.ctl, Config{})
	for _, ten := range []Tenant{
		{Name: "alice", Key: "ka"},
		{Name: "bob", Key: "kb"},
	} {
		if err := svc.AddTenant(ten); err != nil {
			t.Fatal(err)
		}
	}

	var av, bv JobView
	fl.k.Go(func() {
		var err error
		if av, err = svc.Submit("ka", scenarioJSON("a", 4, 20*time.Second)); err != nil {
			t.Errorf("alice submit: %v", err)
		}
		if bv, err = svc.Submit("kb", scenarioJSON("b", 5, 20*time.Second)); err != nil {
			t.Errorf("bob submit: %v", err)
		}
	})
	fl.k.RunFor(10 * time.Second)

	// Mid-run: both jobs hold nodes at once on the shared fleet.
	au, err := svc.Usage("ka", "alice")
	if err != nil {
		t.Fatal(err)
	}
	bu, err := svc.Usage("kb", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if au.RunningNodes != 4 || bu.RunningNodes != 5 {
		t.Fatalf("mid-run nodes alice=%d bob=%d, want 4 and 5", au.RunningNodes, bu.RunningNodes)
	}

	fl.k.RunFor(time.Minute)
	for _, probe := range []struct{ key, id string }{{"ka", av.ID}, {"kb", bv.ID}} {
		res, err := svc.Result(probe.key, probe.id)
		if err != nil {
			t.Fatalf("result %s: %v", probe.id, err)
		}
		if res.State != Done {
			t.Errorf("job %s state = %s, want done", probe.id, res.State)
		}
		if len(res.Apps) != 1 || res.Apps[0].Deployed != res.Apps[0].Nodes {
			t.Errorf("job %s placed %+v", probe.id, res.Apps)
		}
	}

	// Tenants cannot see each other's jobs.
	if _, err := svc.Job("kb", av.ID); code(t, err) != ErrUnknownJob {
		t.Errorf("cross-tenant job read: %v", err)
	}
	if _, err := svc.Usage("kb", "alice"); code(t, err) != ErrAuth {
		t.Errorf("cross-tenant usage read: %v", err)
	}
}

// TestQuotaAndAuthTypedErrors pins every admission failure to a typed
// *JobError returned synchronously — quota exhaustion must reject, not
// hang.
func TestQuotaAndAuthTypedErrors(t *testing.T) {
	fl := newSimFleet(t, 8)
	svc := New(fl.rt, fl.ctl, Config{})
	if err := svc.AddTenant(Tenant{Name: "carol", Key: "kc",
		Quota: Quota{MaxNodes: 4, MaxQueued: 1}}); err != nil {
		t.Fatal(err)
	}

	if _, err := svc.Submit("wrong", scenarioJSON("x", 1, time.Second)); code(t, err) != ErrAuth {
		t.Errorf("bad key: %v", err)
	}
	if _, err := svc.Submit("kc", scenarioJSON("big", 5, time.Second)); code(t, err) != ErrQuota {
		t.Errorf("over MaxNodes: %v", err)
	}
	if _, err := svc.Submit("kc", scenarioJSON("huge", 100, time.Second)); code(t, err) != ErrCapacity {
		t.Errorf("over platform capacity: %v", err)
	}
	if _, err := svc.Submit("kc", []byte(`{"apps":[]}`)); code(t, err) != ErrBadScenario {
		t.Errorf("empty scenario: %v", err)
	}
	if _, err := svc.Job("kc", "j999"); code(t, err) != ErrUnknownJob {
		t.Errorf("unknown job: %v", err)
	}

	// Fill the 4-node running quota, then the 1-slot queue; the next
	// submission is quota-rejected immediately.
	fl.k.Go(func() {
		if _, err := svc.Submit("kc", scenarioJSON("run", 4, time.Minute)); err != nil {
			t.Errorf("first job: %v", err)
		}
		if _, err := svc.Submit("kc", scenarioJSON("waits", 4, time.Minute)); err != nil {
			t.Errorf("queued job: %v", err)
		}
		if _, err := svc.Submit("kc", scenarioJSON("spills", 4, time.Minute)); code(t, err) != ErrQuota {
			t.Errorf("queue overflow: %v", err)
		}
	})
	fl.k.RunFor(10 * time.Second)

	u, err := svc.Usage("kc", "carol")
	if err != nil {
		t.Fatal(err)
	}
	if u.RunningJobs != 1 || u.QueuedJobs != 1 {
		t.Fatalf("usage = %+v, want 1 running / 1 queued", u)
	}
}

// TestFairSharePlacement floods the queue from one tenant and checks a
// later-arriving tenant's job is placed ahead of the backlog: next slot
// goes to the tenant with the fewest placed nodes.
func TestFairSharePlacement(t *testing.T) {
	fl := newSimFleet(t, 10)
	svc := New(fl.rt, fl.ctl, Config{Capacity: 6})
	for _, ten := range []Tenant{{Name: "alice", Key: "ka"}, {Name: "bob", Key: "kb"}} {
		if err := svc.AddTenant(ten); err != nil {
			t.Fatal(err)
		}
	}

	ids := make(map[string]string)
	fl.k.Go(func() {
		for i := 0; i < 4; i++ {
			v, err := svc.Submit("ka", scenarioJSON(fmt.Sprintf("a%d", i), 3, 15*time.Second))
			if err != nil {
				t.Errorf("alice submit %d: %v", i, err)
				return
			}
			ids[fmt.Sprintf("a%d", i)] = v.ID
		}
	})
	fl.k.GoAfter(2*time.Second, func() {
		v, err := svc.Submit("kb", scenarioJSON("b0", 3, 15*time.Second))
		if err != nil {
			t.Errorf("bob submit: %v", err)
			return
		}
		ids["b0"] = v.ID
	})
	fl.k.RunFor(3 * time.Minute)

	wait := func(key, name string) time.Duration {
		res, err := svc.Result(key, ids[name])
		if err != nil {
			t.Fatalf("result %s: %v", name, err)
		}
		if res.State != Done {
			t.Fatalf("job %s state = %s, want done (no starvation)", name, res.State)
		}
		return res.QueueWaitNS
	}
	bobWait := wait("kb", "b0")
	// Bob arrived behind alice's a2 and a3 but holds fewer nodes, so his
	// job overtakes her backlog.
	if a2 := wait("ka", "a2"); bobWait >= a2 {
		t.Errorf("bob waited %v, alice's third job %v — fair share should place bob first", bobWait, a2)
	}
	if a3 := wait("ka", "a3"); bobWait >= a3 {
		t.Errorf("bob waited %v, alice's fourth job %v", bobWait, a3)
	}
}

// TestKillLifecycle kills a running job and a queued job and checks
// both settle as killed with their nodes returned.
func TestKillLifecycle(t *testing.T) {
	fl := newSimFleet(t, 6)
	svc := New(fl.rt, fl.ctl, Config{Capacity: 4})
	if err := svc.AddTenant(Tenant{Name: "dave", Key: "kd"}); err != nil {
		t.Fatal(err)
	}
	var run, queued JobView
	fl.k.Go(func() {
		var err error
		if run, err = svc.Submit("kd", scenarioJSON("r", 4, time.Hour)); err != nil {
			t.Errorf("submit: %v", err)
		}
		if queued, err = svc.Submit("kd", scenarioJSON("q", 4, time.Hour)); err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	fl.k.RunFor(10 * time.Second)

	if err := svc.Kill("kd", queued.ID); err != nil {
		t.Fatalf("kill queued: %v", err)
	}
	fl.k.Go(func() {
		if err := svc.Kill("kd", run.ID); err != nil {
			t.Errorf("kill running: %v", err)
		}
	})
	fl.k.RunFor(30 * time.Second)

	for _, id := range []string{run.ID, queued.ID} {
		res, err := svc.Result("kd", id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		if res.State != Killed {
			t.Errorf("job %s state = %s, want killed", id, res.State)
		}
	}
	u, err := svc.Usage("kd", "dave")
	if err != nil {
		t.Fatal(err)
	}
	if u.RunningJobs != 0 || u.RunningNodes != 0 || u.QueuedJobs != 0 {
		t.Fatalf("post-kill usage = %+v, want all zero", u)
	}
}

// TestRequeueAfterChurn places a job that cannot fit the initial
// population, lets more daemons register, and checks the re-placement
// machinery lands it — the hosted state machine survives daemon churn.
func TestRequeueAfterChurn(t *testing.T) {
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 30 * time.Millisecond}, 9, 1)
	rt := core.NewSimRuntime(k, 1)
	reg := sleepRegistry()
	ctl := controller.New(rt, nw.Node(0), controller.DefaultConfig())
	k.Go(func() {
		if err := ctl.Start(); err != nil {
			t.Errorf("controller: %v", err)
		}
	})
	ctlAddr := transport.Addr{Host: "n0", Port: controller.DefaultConfig().Port}
	connect := func(i int, after time.Duration) {
		d := daemon.New(rt, nw.Node(i), reg, daemon.DefaultConfig(simnet.HostName(i)), nil)
		k.GoAfter(after, func() {
			if err := d.Connect(ctlAddr); err != nil {
				t.Errorf("daemon connect: %v", err)
			}
		})
	}
	for i := 1; i <= 3; i++ { // too few for a 6-node job
		connect(i, time.Duration(i)*100*time.Millisecond)
	}
	for i := 4; i <= 8; i++ { // the reinforcements
		connect(i, 20*time.Second+time.Duration(i)*100*time.Millisecond)
	}

	svc := New(rt, ctl, Config{Capacity: 8, DeployAttempts: 30, RetryDelay: 2 * time.Second})
	if err := svc.AddTenant(Tenant{Name: "erin", Key: "ke"}); err != nil {
		t.Fatal(err)
	}
	var jv JobView
	k.GoAfter(2*time.Second, func() {
		var err error
		if jv, err = svc.Submit("ke", scenarioJSON("churny", 6, 10*time.Second)); err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	k.RunFor(3 * time.Minute)

	res, err := svc.Result("ke", jv.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.State != Done {
		t.Fatalf("job state = %s (%s), want done after the population recovered", res.State, res.Error)
	}
	if res.Apps[0].Deployed != 6 {
		t.Fatalf("placed %d instances, want 6", res.Apps[0].Deployed)
	}
}
