package llenc

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, msg := range []string{"", "a", "hello world", string(make([]byte, 100000))} {
		if err := w.WriteMessage([]byte(msg)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	r := NewReader(&buf)
	for _, want := range []string{"", "a", "hello world", string(make([]byte, 100000))} {
		got, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if string(got) != want {
			t.Fatalf("got %d bytes, want %d", len(got), len(want))
		}
	}
	if _, err := r.ReadMessage(); err != io.EOF {
		t.Fatalf("at end: %v, want EOF", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	type msg struct {
		Op   string         `json:"op"`
		Args []any          `json:"args"`
		Meta map[string]int `json:"meta"`
	}
	var buf bytes.Buffer
	c := NewCodec(&buf)
	in := msg{Op: "find_successor", Args: []any{"id", 42.0}, Meta: map[string]int{"ttl": 3}}
	if err := c.Encode(in); err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := c.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || len(out.Args) != 2 || out.Meta["ttl"] != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestTooLarge(t *testing.T) {
	var buf bytes.Buffer
	// Forge a frame header claiming a huge payload.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	r := NewReader(&buf)
	if _, err := r.ReadMessage(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteMessage([]byte("hello"))
	trunc := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.ReadMessage(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0, 0}))
	if _, err := r.ReadMessage(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestDecodeBadJSON(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteMessage([]byte("{not json"))
	var v map[string]any
	if err := NewReader(&buf).Decode(&v); err == nil {
		t.Fatal("decoded invalid JSON")
	}
}

// Property: any sequence of arbitrary byte messages survives framing.
func TestQuickFraming(t *testing.T) {
	f := func(msgs [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, m := range msgs {
			if err := w.WriteMessage(m); err != nil {
				return false
			}
		}
		r := NewReader(&buf)
		for _, m := range msgs {
			got, err := r.ReadMessage()
			if err != nil || !bytes.Equal(got, m) {
				return false
			}
		}
		_, err := r.ReadMessage()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteMessage(b *testing.B) {
	payload := make([]byte, 1024)
	w := NewWriter(io.Discard)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		w.WriteMessage(payload)
	}
}
