package llenc

import (
	"strconv"
	"unicode/utf8"
)

// Shared primitives for hand-rolled JSON fast paths (FastMarshaler /
// FastUnmarshaler implementations). Two codecs use them today — the
// control plane's ctlproto.Msg and the RPC library's request/response
// envelopes — and both carry the same contract: the fast encoding must
// be byte-identical to encoding/json's output, and the fast parser must
// either reproduce encoding/json's result exactly or decline so the
// caller falls back. Keeping the character-class rules here means the
// codecs cannot drift from each other.

// JSONSafe reports whether encoding/json would emit s as a plain quoted
// string: printable ASCII with no characters that JSON or the default
// HTML escaping would rewrite.
func JSONSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// JSONVerbatim reports whether encoding/json's RawMessage encoder
// (compact plus HTML escaping) would emit raw byte-for-byte: no
// whitespace outside strings, no HTML metacharacters anywhere, no
// control bytes, and no U+2028/U+2029 (which the encoder escapes).
// It does not validate raw's grammar — callers that cannot vouch for
// the bytes must check json.Valid separately.
func JSONVerbatim(raw []byte) bool {
	inStr := false
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case c == '<' || c == '>' || c == '&':
			return false
		case c == 0xe2 && i+2 < len(raw) && raw[i+1] == 0x80 && (raw[i+2] == 0xa8 || raw[i+2] == 0xa9):
			return false // U+2028 / U+2029
		}
		if inStr {
			switch {
			case c == '"':
				inStr = false
			case c == '\\':
				i++ // escape sequence: next byte is literal
			case c < 0x20:
				return false
			}
			continue
		}
		switch {
		case c == '"':
			inStr = true
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			return false // compact would strip it
		case c < 0x20:
			return false
		}
	}
	return !inStr
}

// AppendJSONString appends s as a quoted JSON string. The caller must
// have checked JSONSafe(s).
func AppendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// Lexer is a cursor over a JSON document for decline-don't-guess fast
// parsers: every method either consumes exactly what encoding/json
// would accept for the construct, or reports false so the caller can
// retry with encoding/json.
type Lexer struct {
	Data []byte
	Pos  int
}

// SkipWS advances past insignificant whitespace.
func (l *Lexer) SkipWS() {
	for l.Pos < len(l.Data) {
		switch l.Data[l.Pos] {
		case ' ', '\t', '\n', '\r':
			l.Pos++
		default:
			return
		}
	}
}

// Consume advances past c if it is the next byte.
func (l *Lexer) Consume(c byte) bool {
	if l.Pos < len(l.Data) && l.Data[l.Pos] == c {
		l.Pos++
		return true
	}
	return false
}

// End reports whether only whitespace remains.
func (l *Lexer) End() bool {
	l.SkipWS()
	return l.Pos == len(l.Data)
}

// RawString parses a quoted string with no escapes, returning the raw
// bytes between the quotes (valid-UTF-8 non-ASCII passes through
// verbatim). Strings containing escapes, control bytes or invalid UTF-8
// — which encoding/json rewrites to U+FFFD — are declined.
func (l *Lexer) RawString() ([]byte, bool) {
	if !l.Consume('"') {
		return nil, false
	}
	start := l.Pos
	ascii := true
	for l.Pos < len(l.Data) {
		c := l.Data[l.Pos]
		if c == '"' {
			s := l.Data[start:l.Pos]
			l.Pos++
			if !ascii && !utf8.Valid(s) {
				return nil, false
			}
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		if c >= 0x80 {
			ascii = false
		}
		l.Pos++
	}
	return nil, false
}

// String is RawString converted to a string.
func (l *Lexer) String() (string, bool) {
	b, ok := l.RawString()
	return string(b), ok
}

// Uint parses a non-negative JSON integer. Overflow, leading zeros and
// float/exponent syntax are declined — encoding/json rejects or decodes
// those differently, so guessing would diverge.
func (l *Lexer) Uint() (uint64, bool) {
	start := l.Pos
	var v uint64
	for l.Pos < len(l.Data) {
		c := l.Data[l.Pos]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		const cutoff = (1<<64 - 1) / 10
		if v > cutoff || (v == cutoff && d > (1<<64-1)%10) {
			return 0, false
		}
		v = v*10 + d
		l.Pos++
	}
	if l.Pos == start {
		return 0, false
	}
	if l.Data[start] == '0' && l.Pos-start > 1 {
		return 0, false // "00"/"01" are invalid JSON numbers
	}
	if l.Pos < len(l.Data) {
		switch l.Data[l.Pos] {
		case '.', 'e', 'E':
			return 0, false
		}
	}
	return v, true
}

// Int parses a JSON integer that fits an int.
func (l *Lexer) Int() (int, bool) {
	neg := l.Consume('-')
	v, ok := l.Uint()
	if !ok || v > 1<<62 {
		return 0, false
	}
	if neg {
		return int(-int64(v)), true
	}
	return int(v), true
}

// SkipValue consumes one JSON value of any kind and returns its raw
// span, leading and trailing whitespace excluded — the same bytes
// encoding/json captures into a json.RawMessage. The scan is
// structural (strings, nesting, token boundaries), not a grammar
// check: callers that need strictness must validate the span with
// json.Valid before trusting it.
func (l *Lexer) SkipValue() ([]byte, bool) {
	l.SkipWS()
	start := l.Pos
	depth := 0
	for l.Pos < len(l.Data) {
		c := l.Data[l.Pos]
		switch {
		case c == '"':
			if !l.skipString() {
				return nil, false
			}
		case c == '{' || c == '[':
			depth++
			l.Pos++
			continue
		case c == '}' || c == ']':
			if depth == 0 {
				return nil, false
			}
			depth--
			l.Pos++
		case c == ',' || c == ':':
			if depth == 0 {
				return nil, false
			}
			l.Pos++
			continue
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if depth == 0 {
				return nil, false // no value started yet
			}
			l.Pos++
			continue
		case isTokenByte(c):
			for l.Pos < len(l.Data) && isTokenByte(l.Data[l.Pos]) {
				l.Pos++
			}
		default:
			return nil, false
		}
		if depth == 0 {
			return l.Data[start:l.Pos], true
		}
	}
	return nil, false
}

// maxFastDepth bounds nesting in the strict validator. encoding/json
// allows 10,000 levels; declining earlier only costs a fallback, never a
// divergence.
const maxFastDepth = 1000

// Value strictly consumes one JSON value — exactly the RFC 8259 grammar
// encoding/json's scanner accepts (any bytes ≥ 0x20 pass inside strings,
// UTF-8 is not validated, \u escapes need four hex digits) — and returns
// its raw span, whitespace-trimmed like SkipValue. Unlike SkipValue the
// span needs no separate json.Valid check; values nested deeper than
// maxFastDepth are declined.
func (l *Lexer) Value() ([]byte, bool) {
	l.SkipWS()
	start := l.Pos
	if !l.validValue(0) {
		return nil, false
	}
	return l.Data[start:l.Pos], true
}

func (l *Lexer) validValue(depth int) bool {
	if depth > maxFastDepth || l.Pos >= len(l.Data) {
		return false
	}
	switch c := l.Data[l.Pos]; {
	case c == '{':
		l.Pos++
		l.SkipWS()
		if l.Consume('}') {
			return true
		}
		for {
			l.SkipWS()
			if !l.validString() {
				return false
			}
			l.SkipWS()
			if !l.Consume(':') {
				return false
			}
			l.SkipWS()
			if !l.validValue(depth + 1) {
				return false
			}
			l.SkipWS()
			if l.Consume(',') {
				continue
			}
			return l.Consume('}')
		}
	case c == '[':
		l.Pos++
		l.SkipWS()
		if l.Consume(']') {
			return true
		}
		for {
			l.SkipWS()
			if !l.validValue(depth + 1) {
				return false
			}
			l.SkipWS()
			if l.Consume(',') {
				continue
			}
			return l.Consume(']')
		}
	case c == '"':
		return l.validString()
	case c == 't':
		return l.consumeLit("true")
	case c == 'f':
		return l.consumeLit("false")
	case c == 'n':
		return l.consumeLit("null")
	default:
		return l.validNumber()
	}
}

// validString consumes a string token, escapes included.
func (l *Lexer) validString() bool {
	if !l.Consume('"') {
		return false
	}
	for l.Pos < len(l.Data) {
		switch c := l.Data[l.Pos]; {
		case c == '"':
			l.Pos++
			return true
		case c == '\\':
			l.Pos++
			if l.Pos >= len(l.Data) {
				return false
			}
			switch l.Data[l.Pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				l.Pos++
			case 'u':
				l.Pos++
				if l.Pos+4 > len(l.Data) {
					return false
				}
				for i := 0; i < 4; i++ {
					if !isHex(l.Data[l.Pos]) {
						return false
					}
					l.Pos++
				}
			default:
				return false
			}
		case c < 0x20:
			return false
		default:
			l.Pos++
		}
	}
	return false
}

// validNumber consumes a number token: [-] int [frac] [exp].
func (l *Lexer) validNumber() bool {
	l.Consume('-')
	switch {
	case l.Consume('0'):
	case l.Pos < len(l.Data) && l.Data[l.Pos] >= '1' && l.Data[l.Pos] <= '9':
		for l.Pos < len(l.Data) && isDigit(l.Data[l.Pos]) {
			l.Pos++
		}
	default:
		return false
	}
	if l.Consume('.') {
		if l.Pos >= len(l.Data) || !isDigit(l.Data[l.Pos]) {
			return false
		}
		for l.Pos < len(l.Data) && isDigit(l.Data[l.Pos]) {
			l.Pos++
		}
	}
	if l.Pos < len(l.Data) && (l.Data[l.Pos] == 'e' || l.Data[l.Pos] == 'E') {
		l.Pos++
		if l.Pos < len(l.Data) && (l.Data[l.Pos] == '+' || l.Data[l.Pos] == '-') {
			l.Pos++
		}
		if l.Pos >= len(l.Data) || !isDigit(l.Data[l.Pos]) {
			return false
		}
		for l.Pos < len(l.Data) && isDigit(l.Data[l.Pos]) {
			l.Pos++
		}
	}
	return true
}

// consumeLit consumes an exact keyword.
func (l *Lexer) consumeLit(lit string) bool {
	if l.Pos+len(lit) > len(l.Data) || string(l.Data[l.Pos:l.Pos+len(lit)]) != lit {
		return false
	}
	l.Pos += len(lit)
	return true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// ValidJSON reports whether b is exactly one valid JSON value — the
// allocation-free counterpart of json.Valid for fast-path guards.
func ValidJSON(b []byte) bool {
	l := Lexer{Data: b}
	if _, ok := l.Value(); !ok {
		return false
	}
	return l.End()
}

// skipString consumes a quoted string including escape sequences.
func (l *Lexer) skipString() bool {
	l.Pos++ // opening quote
	for l.Pos < len(l.Data) {
		switch l.Data[l.Pos] {
		case '"':
			l.Pos++
			return true
		case '\\':
			l.Pos += 2
		default:
			l.Pos++
		}
	}
	return false
}

// isTokenByte reports bytes that continue a number or keyword token.
func isTokenByte(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c == '-' || c == '+' || c == '.'
}

// AppendUint appends v in base 10 (a strconv re-export so fast encoders
// need only this package).
func AppendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }

// AppendInt appends v in base 10.
func AppendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }
