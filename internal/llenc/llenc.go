// Package llenc implements SPLAY's llenc library: length-prefixed message
// framing over stream transports, with JSON payload helpers.
//
// The paper describes llenc as the library that "automatically performs
// message demarcation, computing buffer sizes and waiting for all packets of
// a message before delivery", layered under the json serialization library.
// Frames are a 4-byte big-endian length followed by the payload.
package llenc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxMessage bounds decoded message sizes so a corrupt or hostile peer
// cannot make a reader allocate unbounded memory.
const MaxMessage = 64 << 20

// ErrTooLarge is returned when an encoded frame exceeds MaxMessage.
var ErrTooLarge = errors.New("llenc: message exceeds maximum size")

const headerSize = 4

// FastMarshaler is implemented by message types with a hand-rolled JSON
// fast path. AppendJSON appends the value's encoding to buf and reports
// whether it did; the appended bytes must be identical to json.Marshal's
// output for the value. When it reports false, buf is returned unchanged
// and the caller uses encoding/json instead.
type FastMarshaler interface {
	AppendJSON(buf []byte) ([]byte, bool)
}

// FastUnmarshaler is the decoding counterpart: ParseJSON parses data and
// reports whether it handled it, leaving the receiver untouched on
// false so the caller can retry with encoding/json.
type FastUnmarshaler interface {
	ParseJSON(data []byte) bool
}

// Writer frames messages onto an io.Writer.
//
// Frame staging buffers are borrowed from a package-wide pool for the
// duration of one write rather than retained per Writer: a system with
// one framing writer per cached connection (the RPC planes at simulation
// scale) would otherwise hold every connection's high-water frame size
// forever. Steady-state writes still allocate nothing.
type Writer struct {
	w io.Writer
}

// wbufPool recycles frame staging buffers across all Writers.
var wbufPool = sync.Pool{New: func() any { return new([]byte) }}

// NewWriter returns a framing writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Reset points the writer at dst, so a Writer embedded by value in
// per-connection state needs no separate allocation.
func (w *Writer) Reset(dst io.Writer) { w.w = dst }

// WriteMessage writes one frame. It is not safe for concurrent use.
func (w *Writer) WriteMessage(payload []byte) error {
	if len(payload) > MaxMessage {
		return ErrTooLarge
	}
	bp := wbufPool.Get().(*[]byte)
	need := headerSize + len(payload)
	buf := *bp
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[headerSize:], payload)
	_, err := w.w.Write(buf)
	*bp = buf[:0]
	wbufPool.Put(bp)
	return err
}

// Encode marshals v as JSON and writes it as one frame. Values
// implementing FastMarshaler encode straight into the frame buffer,
// skipping both reflection and the payload copy.
func (w *Writer) Encode(v any) error {
	if fm, ok := v.(FastMarshaler); ok {
		bp := wbufPool.Get().(*[]byte)
		frame := append((*bp)[:0], 0, 0, 0, 0)
		if b, ok := fm.AppendJSON(frame); ok {
			n := len(b) - headerSize
			if n > MaxMessage {
				*bp = b[:0]
				wbufPool.Put(bp)
				return ErrTooLarge
			}
			binary.BigEndian.PutUint32(b, uint32(n))
			_, err := w.w.Write(b)
			*bp = b[:0]
			wbufPool.Put(bp)
			return err
		}
		// Declined: keep whatever capacity the attempt grew.
		*bp = frame[:0]
		wbufPool.Put(bp)
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("llenc: encode: %w", err)
	}
	return w.WriteMessage(payload)
}

// Reader reads frames from an io.Reader.
type Reader struct {
	r      io.Reader
	header [headerSize]byte
	buf    []byte // reused payload buffer
}

// NewReader returns a framing reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadMessage reads one frame and returns its payload. The returned slice
// is valid until the next call to ReadMessage.
func (r *Reader) ReadMessage() ([]byte, error) {
	if _, err := io.ReadFull(r.r, r.header[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(r.header[:])
	if n > MaxMessage {
		return nil, ErrTooLarge
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// Decode reads one frame and unmarshals its JSON payload into v. Values
// implementing FastUnmarshaler try their hand-rolled parser first and
// fall back to encoding/json for anything it declined.
func (r *Reader) Decode(v any) error {
	payload, err := r.ReadMessage()
	if err != nil {
		return err
	}
	if fu, ok := v.(FastUnmarshaler); ok && fu.ParseJSON(payload) {
		return nil
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("llenc: decode: %w", err)
	}
	return nil
}

// Codec couples a Reader and Writer over one stream, the common case for
// request/answer protocols.
type Codec struct {
	*Reader
	*Writer
}

// NewCodec returns a codec over rw.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{Reader: NewReader(rw), Writer: NewWriter(rw)}
}
