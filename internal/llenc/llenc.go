// Package llenc implements SPLAY's llenc library: length-prefixed message
// framing over stream transports, with JSON payload helpers.
//
// The paper describes llenc as the library that "automatically performs
// message demarcation, computing buffer sizes and waiting for all packets of
// a message before delivery", layered under the json serialization library.
// Frames are a 4-byte big-endian length followed by the payload.
package llenc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxMessage bounds decoded message sizes so a corrupt or hostile peer
// cannot make a reader allocate unbounded memory.
const MaxMessage = 64 << 20

// ErrTooLarge is returned when an encoded frame exceeds MaxMessage.
var ErrTooLarge = errors.New("llenc: message exceeds maximum size")

const headerSize = 4

// FastMarshaler is implemented by message types with a hand-rolled JSON
// fast path. AppendJSON appends the value's encoding to buf and reports
// whether it did; the appended bytes must be identical to json.Marshal's
// output for the value. When it reports false, buf is returned unchanged
// and the caller uses encoding/json instead.
type FastMarshaler interface {
	AppendJSON(buf []byte) ([]byte, bool)
}

// FastUnmarshaler is the decoding counterpart: ParseJSON parses data and
// reports whether it handled it, leaving the receiver untouched on
// false so the caller can retry with encoding/json.
type FastUnmarshaler interface {
	ParseJSON(data []byte) bool
}

// Writer frames messages onto an io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte // reused header+payload buffer for WriteMessage
}

// NewWriter returns a framing writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteMessage writes one frame. It is not safe for concurrent use.
func (w *Writer) WriteMessage(payload []byte) error {
	if len(payload) > MaxMessage {
		return ErrTooLarge
	}
	need := headerSize + len(payload)
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	buf := w.buf[:need]
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[headerSize:], payload)
	_, err := w.w.Write(buf)
	return err
}

// Encode marshals v as JSON and writes it as one frame. Values
// implementing FastMarshaler encode straight into the frame buffer,
// skipping both reflection and the payload copy.
func (w *Writer) Encode(v any) error {
	if fm, ok := v.(FastMarshaler); ok {
		frame := append(w.buf[:0], 0, 0, 0, 0)
		if b, ok := fm.AppendJSON(frame); ok {
			n := len(b) - headerSize
			if n > MaxMessage {
				return ErrTooLarge
			}
			binary.BigEndian.PutUint32(b, uint32(n))
			w.buf = b[:0]
			_, err := w.w.Write(b)
			return err
		}
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("llenc: encode: %w", err)
	}
	return w.WriteMessage(payload)
}

// Reader reads frames from an io.Reader.
type Reader struct {
	r      io.Reader
	header [headerSize]byte
	buf    []byte // reused payload buffer
}

// NewReader returns a framing reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadMessage reads one frame and returns its payload. The returned slice
// is valid until the next call to ReadMessage.
func (r *Reader) ReadMessage() ([]byte, error) {
	if _, err := io.ReadFull(r.r, r.header[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(r.header[:])
	if n > MaxMessage {
		return nil, ErrTooLarge
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// Decode reads one frame and unmarshals its JSON payload into v. Values
// implementing FastUnmarshaler try their hand-rolled parser first and
// fall back to encoding/json for anything it declined.
func (r *Reader) Decode(v any) error {
	payload, err := r.ReadMessage()
	if err != nil {
		return err
	}
	if fu, ok := v.(FastUnmarshaler); ok && fu.ParseJSON(payload) {
		return nil
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("llenc: decode: %w", err)
	}
	return nil
}

// Codec couples a Reader and Writer over one stream, the common case for
// request/answer protocols.
type Codec struct {
	*Reader
	*Writer
}

// NewCodec returns a codec over rw.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{Reader: NewReader(rw), Writer: NewWriter(rw)}
}
