package llenc

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"
)

// TestValidJSONMatchesEncodingJSON is the strict validator's contract:
// acceptance must never be wider than json.Valid's (narrower is fine —
// a decline only costs the caller a fallback).
func TestValidJSONMatchesEncodingJSON(t *testing.T) {
	accepts := []string{
		`null`, `true`, `false`, `0`, `-0`, `123`, `-12.5`, `1e3`, `1E+3`,
		`2.5e-7`, `""`, `"abc"`, `"sp ace"`, `"esc\"aped\\\n"`, `"é"`,
		`[]`, `[1,2,3]`, `{"k":1}`, `{"a":{"b":[true,null,"x"]}}`,
		` [ 1 , {"k" : "v"} ] `, `"é"`,
	}
	for _, src := range accepts {
		if !ValidJSON([]byte(src)) {
			t.Errorf("ValidJSON rejected valid %q", src)
		}
		if !json.Valid([]byte(src)) {
			t.Fatalf("test case %q is not actually valid", src)
		}
	}
	rejects := []string{
		``, `{`, `}`, `[1,]`, `{"k":}`, `{"k" 1}`, `{k:1}`, `01`, `+1`,
		`1.`, `.5`, `1e`, `truex`, `nul`, `"unterminated`, `"bad\escape"`,
		`"\u00zz"`, `[1 2]`, `{"a":1,}`, `[]]`, `1 2`, "\"ctrl\x01\"",
	}
	for _, src := range rejects {
		if json.Valid([]byte(src)) {
			t.Fatalf("test case %q is actually valid", src)
		}
		if ValidJSON([]byte(src)) {
			t.Errorf("ValidJSON accepted invalid %q", src)
		}
	}
}

// TestValidJSONNeverWiderQuick fuzzes the one-way implication with
// random bytes (mostly JSON-ish punctuation so real structures appear).
func TestValidJSONNeverWiderQuick(t *testing.T) {
	alphabet := []byte(`{}[]",:0123456789.eE+-truefalsnl \`)
	f := func(raw []byte) bool {
		b := make([]byte, len(raw))
		for i, v := range raw {
			b[i] = alphabet[int(v)%len(alphabet)]
		}
		if ValidJSON(b) && !json.Valid(b) {
			t.Logf("accepted invalid %q", b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestJSONVerbatimCompactIdentity pins JSONVerbatim's meaning: when it
// reports true for a valid value, encoding/json's RawMessage encoder
// emits the bytes unchanged.
func TestJSONVerbatimCompactIdentity(t *testing.T) {
	cases := []string{
		`null`, `123`, `"plain"`, `"sp ace"`, `"escA"`, `{"k":[1,"x"]}`,
		`"é"`, `[{"a":1},{"b":2}]`,
	}
	for _, src := range cases {
		raw := json.RawMessage(src)
		enc, err := json.Marshal(raw)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if JSONVerbatim(raw) && !bytes.Equal(enc, raw) {
			t.Errorf("JSONVerbatim(%q) true but encoder emits %q", src, enc)
		}
	}
	// Values the encoder rewrites must report false.
	for _, src := range []string{
		`[1, 2]`, `{"k": 1}`, `"<tag>"`, `"a&b"`, "\" \"", `[1,"<"]`,
	} {
		raw := json.RawMessage(src)
		enc, err := json.Marshal(raw)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if JSONVerbatim(raw) && !bytes.Equal(enc, raw) {
			t.Errorf("JSONVerbatim(%q) true but encoder emits %q", src, enc)
		}
	}
}

// TestLexerRawStringDeclinesInvalidUTF8 pins the U+FFFD divergence
// guard: encoding/json rewrites invalid UTF-8 inside strings, so the
// lexer must decline it rather than pass it through.
func TestLexerRawStringDeclinesInvalidUTF8(t *testing.T) {
	l := Lexer{Data: []byte("\"\x9a\"")}
	if _, ok := l.RawString(); ok {
		t.Fatal("RawString accepted invalid UTF-8")
	}
	l = Lexer{Data: []byte(`"é"`)}
	if s, ok := l.RawString(); !ok || string(s) != "é" {
		t.Fatalf("RawString declined valid UTF-8: %q %v", s, ok)
	}
}
