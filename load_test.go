package splay

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestConfigCapBits pins the capability bits the config compiler
// hardcodes (it cannot import this package) against the SDK's Cap
// constants — differentially, by comparing a compiled document with its
// handwritten-Go twin byte for byte.
func TestConfigCapBits(t *testing.T) {
	t.Parallel()
	if uint32(CapNet) != 1 || uint32(CapFS) != 2 || uint32(AllCaps) != 3 {
		t.Fatalf("Cap constants moved (net=%d fs=%d all=%d); update internal/config's cap bits",
			CapNet, CapFS, AllCaps)
	}
	cases := []struct {
		caps string
		want Cap
	}{
		{"[net]", CapNet},
		{"[fs]", CapFS},
		{"[net, fs]", AllCaps},
		{"all", AllCaps},
	}
	for _, tc := range cases {
		doc := "apps:\n  - app: chord\n    env:\n      caps: " + tc.caps + "\n"
		wire, err := CompileConfig([]byte(doc))
		if err != nil {
			t.Fatalf("caps %s: %v", tc.caps, err)
		}
		twin := Scenario{Apps: []AppSpec{{Name: "chord", Env: EnvConfig{Caps: tc.want}}}}
		want, err := twin.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, want) {
			t.Errorf("caps %s:\n doc  %s\n twin %s", tc.caps, wire, want)
		}
	}
}

// TestConfigGoEquivalence is the compact invariant-11 check: a document
// exercising testbed, params, collect, faults and assertions compiles to
// the exact bytes its handwritten-Go twin marshals to. (The golden-pinned
// configplane experiment proves the two also *run* identically.)
func TestConfigGoEquivalence(t *testing.T) {
	t.Parallel()
	doc := `name: twin
seed: 11
testbed:
  kind: uniform
  daemons: 10
  rtt: 10ms
apps:
  - app: chord
    params:
      bits: 16
      fault_tolerant: true
    nodes: 8
    full_list: true
collect:
  metrics: true
  report_every: 5s
faults:
  eval_every: 5s
  events:
    - at: 30s
      kind: partition
      fraction: 50%
assert:
  - name: bites
    eventually: total(chord.failed_lookups) > 0
duration: 2m
`
	wire, err := CompileConfig([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	twin := Scenario{
		Name:    "twin",
		Seed:    11,
		Testbed: Uniform(10, 10*time.Millisecond, 0),
		Apps: []AppSpec{{
			Name:     "chord",
			Params:   []byte(`{"bits":16,"fault_tolerant":true}`),
			Nodes:    8,
			FullList: true,
		}},
		Collect:  Collect{Metrics: true, ReportEvery: 5 * time.Second},
		Faults:   FaultPlan{EvalEvery: 5 * time.Second, Events: []FaultEvent{PartitionAt(30*time.Second, 0.5)}},
		Assert:   []Assertion{EventuallyHolds("bites", Metric("chord.failed_lookups", StatTotal, Above, 0), 0)},
		Duration: 2 * time.Minute,
	}
	want, err := twin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, want) {
		t.Errorf("document and Go twin diverge:\n doc  %s\n twin %s", wire, want)
	}
	// And the loaded Scenario re-marshals to the same bytes.
	sc, err := LoadScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	again, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Errorf("LoadScenario round-trip diverges:\n got  %s\n want %s", again, want)
	}
}

// TestLoadScenarioErrors pins the SDK-surface error behavior: typed
// *ConfigError with code and field path, and the in-memory decline of
// trace references.
func TestLoadScenarioErrors(t *testing.T) {
	t.Parallel()
	_, err := LoadScenario([]byte("apps:\n  - app: chord\n    params:\n      bits: 99\n"))
	var cerr *ConfigError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *ConfigError", err)
	}
	if cerr.Code != "out_of_range" || cerr.Path != "apps[0].params.bits" || cerr.Line != 4 {
		t.Errorf("error = %+v, want out_of_range at apps[0].params.bits line 4", cerr)
	}

	_, err = LoadScenario([]byte("apps:\n  - app: chord\nchurn:\n  trace: t.trace\n"))
	if !errors.As(err, &cerr) || cerr.Code != "unsupported" || cerr.Path != "churn.trace" {
		t.Errorf("in-memory trace ref = %v, want unsupported at churn.trace", err)
	}

	if err := ValidateConfig([]byte("apps:\n  - app: quux\n")); !errors.As(err, &cerr) || cerr.Code != "unknown_app" {
		t.Errorf("ValidateConfig unknown app = %v", err)
	}
	if err := ValidateConfig([]byte("apps:\n  - app: chord\n")); err != nil {
		t.Errorf("ValidateConfig valid doc = %v", err)
	}
}

// TestLoadScenarioFile resolves churn trace references relative to the
// document's directory.
func TestLoadScenarioFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	trace := "0.5 join 1\n1.5 join 2\n9 leave 1\n"
	if err := os.WriteFile(filepath.Join(dir, "nodes.trace"), []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := "apps:\n  - app: chord\nchurn:\n  trace: nodes.trace\n"
	if err := os.WriteFile(filepath.Join(dir, "scenario.yaml"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScenarioFile(filepath.Join(dir, "scenario.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Churn.Enabled() || sc.Churn.Slots() != 3 {
		t.Errorf("churn = enabled %v slots %d, want 3 slots", sc.Churn.Enabled(), sc.Churn.Slots())
	}
	if _, err := LoadScenarioFile(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestIsConfigDocumentSniff pins the submit-path sniff the CLI and the
// hosting plane share.
func TestIsConfigDocumentSniff(t *testing.T) {
	t.Parallel()
	if !IsConfigDocument([]byte("apps:\n  - app: chord\n")) {
		t.Error("document sniffed as wire")
	}
	wire, err := (Scenario{Apps: []AppSpec{{Name: "chord"}}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if IsConfigDocument(wire) {
		t.Error("wire sniffed as document")
	}
}
