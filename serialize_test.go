package splay_test

// Scenario serialization tests: the wire format round-trips losslessly
// (re-marshal idempotency), a serialized scenario runs byte-identically
// to its in-process Go value (DESIGN.md invariants 7 and 10 — the
// contract that makes hosted submission possible), and the members that
// cannot travel are rejected loudly.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	splay "github.com/splaykit/splay"
)

// wireScenario builds the reference scenario for the round-trip tests:
// built-in chord by name on a deterministic simulated testbed, with the
// collection plane up so the digest sees real telemetry.
func wireScenario() splay.Scenario {
	churn, err := splay.ChurnScript("at 20s leave 1", 6)
	if err != nil {
		panic(err)
	}
	return splay.Scenario{
		Name:    "wire-chord",
		Seed:    41,
		Testbed: splay.Uniform(6, 4*time.Millisecond, 0),
		Collect: splay.Collect{Metrics: true, ReportEvery: 2 * time.Second},
		Apps: []splay.AppSpec{{
			Name:     "chord",
			Nodes:    4,
			Superset: 1.25,
			Params:   []byte(`{"bits":16,"lookups_per_min":30}`),
			Env: splay.EnvConfig{
				Caps: splay.CapNet,
				Net:  splay.NetLimits{MaxSockets: 64},
			},
		}},
		Churn:    churn,
		Duration: 30 * time.Second,
	}
}

// runDigest runs a scenario and flattens everything its Result exposes
// into one comparable string.
func runDigest(t *testing.T, sc splay.Scenario) string {
	t.Helper()
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	for _, j := range res.Jobs {
		fmt.Fprintf(&b, "job %s state=%s deployed=%v\n", j.ID, j.State, j.Deployed)
	}
	if res.Metrics != nil {
		frames, bytes := res.Metrics.Received()
		fmt.Fprintf(&b, "nodes=%d frames=%d bytes=%d deploys=%d\n",
			res.Metrics.Nodes(), frames, bytes, res.Metrics.Counter("ctl.deploys"))
	}
	return b.String()
}

// TestScenarioRoundTripByteIdentical is the wire-submission contract: a
// scenario pushed through Marshal/UnmarshalScenario runs byte-for-byte
// identically to the in-process value it came from, and the wire bytes
// are a fixed point of the round trip.
func TestScenarioRoundTripByteIdentical(t *testing.T) {
	t.Parallel()
	sc := wireScenario()
	data, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := splay.UnmarshalScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-marshal drifted:\n first %s\n again %s", data, again)
	}
	local := runDigest(t, wireScenario())
	wire := runDigest(t, back)
	if local != wire {
		t.Fatalf("serialized scenario ran differently:\n local %q\n wire  %q", local, wire)
	}
}

// TestScenarioMarshalRejectsInline pins the loud-failure contract for
// the two members that cannot travel.
func TestScenarioMarshalRejectsInline(t *testing.T) {
	t.Parallel()
	inline := splay.Scenario{
		Testbed: splay.Uniform(2, time.Millisecond, 0),
		Apps: []splay.AppSpec{{
			Name: "inline",
			App:  splay.AppFunc(func(env *splay.Env) error { return nil }),
		}},
	}
	if _, err := inline.Marshal(); err == nil {
		t.Error("inline App implementation serialized silently")
	}
	logs := splay.Scenario{
		Testbed: splay.Uniform(2, time.Millisecond, 0),
		Collect: splay.Collect{Logs: os.Stderr},
	}
	if _, err := logs.Marshal(); err == nil {
		t.Error("Collect.Logs writer serialized silently")
	}
	if _, err := splay.UnmarshalScenario([]byte(`{"testbed":{"kind":"warp","daemons":3}}`)); err == nil {
		t.Error("unknown testbed kind accepted")
	}
}
