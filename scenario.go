package splay

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/splaykit/splay/internal/churn"
	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/faults"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/logging"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

// AppSpec names one application a Scenario deploys: either a built-in
// (chord, pastry, cyclon, epidemic, bittorrent — Name alone), an inline
// App, or a Factory building the App from JSON job parameters.
type AppSpec struct {
	// Name registers the application and names it in job descriptors.
	Name string
	// App is an inline implementation (ignores Params).
	App App
	// New builds the implementation from Params. Factories must
	// tolerate nil params (daemons probe with nil before reserving).
	New Factory
	// Params is the JSON parameter document shipped with the job.
	Params []byte
	// Nodes is how many instances to deploy.
	Nodes int
	// Superset is the selection over-probe factor (0 = the controller
	// default, 1.25).
	Superset float64
	// FullList ships the whole deployment list as job.nodes instead of
	// a single rendez-vous node.
	FullList bool
	// Env tunes the capability grant and extra sandbox limits every
	// instance of this application receives.
	Env EnvConfig
	// Port is the instance port used when a churn trace instantiates
	// the application directly (no daemon grants one); default 9000.
	Port int
}

// Collect declares what a Scenario's observability plane gathers while
// the experiment runs.
type Collect struct {
	// Metrics runs an aggregator (on a dedicated monitoring host in
	// simulation, on an ephemeral loopback port live) and lets
	// instances stream instrument deltas to it via Env.StartReporting.
	// The controller's own instruments report over the same wire.
	Metrics bool
	// ReportEvery is the per-node delta report period (default 5s).
	ReportEvery time.Duration
	// Key authenticates metric streams (default "splay").
	Key string
	// MetricsPort is the aggregator's port on the simulated monitoring
	// host (default 7000); live testbeds always bind ephemerally.
	MetricsPort int
	// Logs receives daemon and instance log lines (nil discards).
	Logs io.Writer
}

// Scenario is the declarative description of one experiment: a testbed,
// the applications to deploy on it, optional churn, and what to collect.
// Run executes it end to end; Start returns a Session for experiments
// that interleave custom phases (static convergence, measurement
// windows, live watch rows) with the provisioned system.
//
// The same Scenario runs on a simulated testbed in virtual time or on a
// live testbed on real sockets; application code sees the same Env
// either way.
type Scenario struct {
	// Name labels the scenario (job IDs, logs).
	Name string
	// Seed fixes all randomness (0 = 2009 in simulation, wall-clock
	// live).
	Seed int64
	// Testbed is where to provision: PlanetLab(n), ModelNet(n),
	// Uniform(n, rtt, bps) or Live(n).
	Testbed Testbed
	// Apps are the applications to deploy.
	Apps []AppSpec
	// Churn drives population dynamics from a script or trace
	// (simulated testbeds only); it instantiates Apps[0] per slot.
	Churn ChurnSpec
	// Collect configures the observability plane.
	Collect Collect
	// Faults is the declarative fault schedule: timed injections plus
	// closed-loop trigger rules, armed right after deployment. The zero
	// plan injects nothing and leaves every schedule untouched.
	Faults FaultPlan
	// Assert are metric predicates the run must satisfy; violations
	// surface from Run as a typed *AssertionError alongside the still
	// valid Result. Trigger rules and assertions read the aggregated
	// telemetry and therefore need Collect.Metrics.
	Assert []Assertion
	// Settle is the daemon connect window before deployments begin
	// (default 45 simulated seconds; live, a 10s readiness deadline
	// polled on the controller's registry).
	Settle time.Duration
	// Duration is Run's workload window after deployment (default 30s).
	Duration time.Duration
	// RegisterTimeout bounds deployment probing (0 = the controller
	// default, 30s; heavy-tailed testbeds want 60s).
	RegisterTimeout time.Duration
	// ControllerPort overrides the daemon-connection port (default
	// 5555 simulated, ephemeral live).
	ControllerPort int
	// Workers sets how many OS threads may drive a simulated testbed's
	// kernel. It is a performance knob only: a scenario's result is a
	// pure function of Seed and the scenario itself, never of Workers or
	// GOMAXPROCS (invariant 9, DESIGN.md). Plain scenarios at large
	// populations provision a sharded kernel — the partition count comes
	// from autoParts, a pure function of the host population, so the
	// schedule can never depend on Workers — and 0 gives every partition
	// its own thread. Small populations and scenarios with collection,
	// faults or assertions run a single partition, where extra workers
	// are parked.
	Workers int
}

// Session is a provisioned scenario: controller started, daemons
// connected (or the churn trace replaying), collection plane up. It
// hands experiments the handles the declarative surface cannot know
// about — deployments, virtual-time control, and the aggregated view.
type Session struct {
	sc   Scenario
	seed int64
	live bool

	k      *sim.Kernel
	pk     *sim.ParKernel // drives k (partition 0) plus any further partitions (simulated testbeds)
	nw     *simnet.Network
	netIns simnet.Instruments
	hasNet bool

	rt      core.Runtime
	node    transport.Node // the controller's host (reporter dialing)
	ctl     *controller.Controller
	agg     *metrics.Aggregator
	reg     *core.Registry
	collect *collectTarget
	host    *Host

	ex    *churn.Executor
	insts []*core.Instance // churn slots

	// Fault plane (see faultplane.go). slots track every provisioned
	// daemon in both worlds; the rest exists only when the scenario
	// declares faults or assertions.
	slots    []*daemonSlot
	nHosts   int // simulated host count (partition/degrade masks)
	ctlAddr  transport.Addr
	rpcRules *faults.RPCRules
	frng     *rand.Rand
	eng      *faults.Engine
	act      *actuators

	startErr error
	stopped  atomic.Bool
}

// Start provisions the scenario and returns a Session. The caller owns
// it and must Stop it (Run does both).
func (sc Scenario) Start(ctx context.Context) (*Session, error) {
	if sc.Testbed == nil {
		return nil, errors.New("splay: scenario needs a testbed")
	}
	switch tb := sc.Testbed.(type) {
	case *simTestbed:
		return sc.startSim(tb)
	case *liveTestbed:
		return sc.startLive(ctx, tb)
	}
	return nil, fmt.Errorf("splay: unknown testbed %T", sc.Testbed)
}

// Run executes the scenario end to end: provision, deploy every app,
// run the workload window, stop the jobs, and return the result.
func (sc Scenario) Run(ctx context.Context) (*Result, error) {
	sess, err := sc.Start(ctx)
	if err != nil {
		return nil, err
	}
	defer sess.Stop()
	res := &Result{Metrics: sess.Telemetry()}
	if !sc.Churn.Enabled() {
		for _, spec := range sc.Apps {
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			job, err := sess.Deploy(spec).Wait()
			if err != nil {
				return nil, err
			}
			if job.State != JobRunning {
				return nil, fmt.Errorf("splay: job %s is %s: %s", job.ID, job.State, job.Err)
			}
			res.Jobs = append(res.Jobs, job)
		}
	}
	// Arm the fault plan with the deployed system as its time origin:
	// +0 on the plan's clock is "deployment just finished".
	if err := sess.ArmFaults(); err != nil {
		return nil, err
	}
	dur := sc.Duration
	if dur <= 0 {
		dur = 30 * time.Second
	}
	sess.RunFor(dur)
	for _, job := range res.Jobs {
		sess.StopJob(job.ID) //nolint:errcheck // best-effort teardown
	}
	// Assertion failures are results, not provisioning errors: the
	// Result still carries the telemetry that explains them.
	if err := sess.CheckAssertions(); err != nil {
		return res, err
	}
	return res, nil
}

// startSim provisions on the simulation kernel. The sequence of kernel
// events is pinned by the experiment goldens (ctlplane, obsplane):
// aggregator first (when collecting), then controller, then daemons
// staggered 2ms apart by host index, then the settle window.
func (sc Scenario) startSim(tb *simTestbed) (*Session, error) {
	seed := sc.Seed
	if seed == 0 {
		seed = 2009
	}
	s := &Session{sc: sc, seed: seed}
	if sc.Churn.Enabled() {
		s.pk = sim.NewParKernel(1, sc.Workers, 0)
		s.k = s.pk.Sub(0)
		return sc.startSimChurn(s, tb)
	}

	collecting := sc.Collect.Metrics
	mon := 0
	if collecting {
		mon = 1 // host 1 is the dedicated monitoring host
	}
	total := tb.daemons + 1 + mon
	s.nHosts = total
	model, proc := tb.build(total, seed)

	// Partition count: a pure function of the host population (never of
	// Workers — invariant 9), restricted to plain scenarios. Collection,
	// logging, faults and assertions keep their established
	// single-partition planes: the aggregator, fault actuators and shared
	// loggers all assume one kernel owns every host.
	parts := 1
	lookahead := time.Duration(0)
	if !collecting && sc.Collect.Logs == nil && sc.Faults.Empty() && len(sc.Assert) == 0 {
		if p := autoParts(total); p > 1 {
			if md, ok := model.(simnet.MinDelayModel); ok && md.MinDelay() > 0 {
				parts, lookahead = p, md.MinDelay()
			}
		}
	}
	workers := sc.Workers
	if workers == 0 {
		workers = parts // auto: one thread per partition
	}
	s.pk = sim.NewParKernel(parts, workers, lookahead)
	s.k = s.pk.Sub(0)
	var nw *simnet.Network
	if parts > 1 {
		var err error
		nw, err = simnet.NewPartitioned(s.pk, model, total, seed)
		if err != nil {
			return nil, err
		}
	} else {
		nw = simnet.New(s.k, model, total, seed)
	}
	if proc != nil {
		nw.SetProcDelay(proc)
	}
	// One runtime per partition, seeded like the sharded experiments
	// (runChordPar): partition 0 draws the plain seed, so single-partition
	// scenarios keep their exact historical schedules.
	rts := make([]*core.SimRuntime, parts)
	for p := range rts {
		rts[p] = core.NewSimRuntime(s.pk.Sub(p), seed+int64(p))
	}
	rt := rts[0]
	s.nw, s.rt = nw, rt

	var dmnIns daemon.Instruments
	if collecting {
		// Network-global instruments: the ground truth monitoring
		// overhead is measured against.
		netReg := metrics.NewRegistry()
		s.netIns = simnet.NewInstruments(netReg)
		s.hasNet = true
		nw.SetInstruments(s.netIns)

		every, key := sc.Collect.reportDefaults()
		port := sc.Collect.MetricsPort
		if port == 0 {
			port = 7000
		}
		var agg *metrics.Aggregator
		s.k.Go(func() {
			var err error
			agg, err = metrics.NewAggregator(nw.Node(1), port, s.k.Go)
			if err == nil {
				agg.Authorize(key)
			}
		})
		s.pk.Run()
		if agg == nil {
			return nil, errors.New("splay: aggregator failed to start")
		}
		s.agg = agg
		s.collect = &collectTarget{
			addr:  transport.Addr{Host: simnet.HostName(1), Port: port},
			key:   key,
			every: every,
		}
	}

	cfg := controller.DefaultConfig()
	if sc.ControllerPort != 0 {
		cfg.Port = sc.ControllerPort
	}
	if sc.RegisterTimeout > 0 {
		cfg.RegisterTimeout = sc.RegisterTimeout
	}
	ctl := controller.New(rt, nw.Node(0), cfg)
	s.ctl = ctl
	s.node = nw.Node(0)
	if collecting {
		// Controller instruments plus fleet-wide daemon accounting
		// share one registry, reported over the wire like every
		// application stream.
		ctlReg := metrics.NewRegistry()
		ctl.SetInstruments(controller.NewInstruments(ctlReg))
		dmnIns = daemon.NewInstruments(ctlReg)
		// One instrument set is shared by the whole fleet: the counters
		// sum correctly but the per-daemon jobs gauge would just be
		// clobbered by whichever daemon Set it last — disable it.
		dmnIns.Jobs = nil
		aggAddr, key, every := s.collect.addr, s.collect.key, s.collect.every
		s.k.Go(func() {
			s.startErr = ctl.Start()
			if s.startErr != nil {
				return
			}
			ctlRep, err := metrics.DialReporter(nw.Node(0), aggAddr, ctlReg,
				metrics.ReporterConfig{Key: key, Node: "ctl"})
			if err != nil {
				s.startErr = err
				return
			}
			for {
				s.k.Sleep(every)
				if s.stopped.Load() {
					return
				}
				ctlRep.Flush() //nolint:errcheck // monitoring is best effort
			}
		})
	} else {
		s.k.Go(func() { s.startErr = ctl.Start() })
	}

	// The RPC fault filter exists only for non-empty plans: an unarmed
	// filter would still sit on every call path, and schedule neutrality
	// wants the default client untouched.
	if !sc.Faults.Empty() {
		s.rpcRules = faults.NewRPCRules(seed)
	}
	reg, err := sc.buildRegistry(s.collect, s.rpcRules)
	if err != nil {
		return nil, err
	}
	s.reg = reg

	lg := sc.simLogger(rt)
	ctlAddr := transport.Addr{Host: simnet.HostName(0), Port: cfg.Port}
	s.ctlAddr = ctlAddr
	base := 1 + mon
	for i := base; i < base+tb.daemons; i++ {
		host := i
		// A daemon lives on its host's kernel partition with that
		// partition's runtime; with one partition this is the plain
		// historical wiring.
		part := nw.Host(host).Part()
		drt := rts[part]
		dcfg := daemon.DefaultConfig(simnet.HostName(host))
		if !sc.Faults.Empty() {
			// Fault-plane sessions survive their own faults: daemons
			// redial a lost controller session with jittered backoff.
			dcfg.Reconnect = true
		}
		mk := func() *daemon.Daemon {
			d := daemon.New(drt, nw.Node(host), reg, dcfg, lg)
			if collecting {
				d.SetInstruments(dmnIns)
			}
			return d
		}
		d := mk()
		s.slots = append(s.slots, &daemonSlot{host: host, name: dcfg.Name, mk: mk, d: d})
		s.pk.GoAfter(part, time.Duration(host)*2*time.Millisecond, func() {
			d.Connect(ctlAddr) //nolint:errcheck // expiry is the monitor's job
		})
	}
	// Connect window plus one full ping rotation, so selection has
	// measured responsiveness for every daemon.
	settle := sc.Settle
	if settle <= 0 {
		settle = 45 * time.Second
	}
	s.pk.RunFor(settle)
	if s.startErr != nil {
		return nil, s.startErr
	}
	if got := ctl.Daemons(); got != tb.daemons {
		return nil, fmt.Errorf("splay: only %d/%d daemons connected", got, tb.daemons)
	}
	return s, nil
}

// autoParts picks a simulated testbed's kernel partition count from its
// host population. It must stay a pure function of that population —
// never of Workers, GOMAXPROCS or the machine — because partitioning is
// schedule-visible (hosts land on partitions, cross-partition traffic
// rides lookahead barriers) while invariant 9 promises results depend
// only on the scenario itself. Thresholds follow the sharded
// experiments: a couple thousand hosts fit one event loop comfortably;
// past that, shards keep the per-loop event rate flat.
func autoParts(hosts int) int {
	switch {
	case hosts >= 32768:
		return 8
	case hosts >= 8192:
		return 4
	case hosts >= 2048:
		return 2
	default:
		return 1
	}
}

// startSimChurn provisions a churn-driven population: no controller —
// the trace is the deployment, instantiating Apps[0] per slot.
func (sc Scenario) startSimChurn(s *Session, tb *simTestbed) (*Session, error) {
	if len(sc.Apps) != 1 {
		return nil, fmt.Errorf("splay: a churn scenario drives exactly one app (have %d)", len(sc.Apps))
	}
	if !sc.Faults.Empty() || len(sc.Assert) > 0 {
		// The fault plane actuates through the controller and daemon
		// slots; a churn trace is its own population schedule.
		return nil, errors.New("splay: fault plans drive controller-provisioned scenarios, not churn traces")
	}
	if sc.Collect.Metrics {
		// Not wired yet: rejecting beats Env.StartReporting failing
		// invisibly inside every churned-in instance.
		return nil, errors.New("splay: churn scenarios do not collect metrics yet")
	}
	slots := sc.Churn.Slots()
	model, proc := tb.build(slots, s.seed)
	nw := simnet.New(s.k, model, slots, s.seed)
	if proc != nil {
		nw.SetProcDelay(proc)
	}
	rt := core.NewSimRuntime(s.k, s.seed)
	s.nw, s.rt = nw, rt
	reg, err := sc.buildRegistry(nil, nil)
	if err != nil {
		return nil, err
	}
	s.reg = reg
	spec := sc.Apps[0]
	port := spec.Port
	if port == 0 {
		port = 9000
	}
	lg := sc.simLogger(rt)
	s.insts = make([]*core.Instance, slots)
	ctl := churn.NodeControlFuncs{
		Start: func(slot int) {
			nw.Host(slot).SetDown(false)
			app, err := reg.New(spec.Name, spec.Params)
			if err != nil {
				return
			}
			job := core.JobInfo{
				JobID:    sc.Name,
				Me:       transport.Addr{Host: simnet.HostName(slot), Port: port},
				Position: slot + 1,
			}
			s.insts[slot] = core.StartInstance(rt, nw.Node(slot), job, lg, app)
		},
		Stop: func(slot int) {
			if inst := s.insts[slot]; inst != nil {
				inst.Kill()
				s.insts[slot] = nil
			}
			nw.Host(slot).SetDown(true)
		},
	}
	s.ex = churn.NewExecutor(rt, sc.Churn.trace, ctl)
	s.k.Go(s.ex.Run)
	return s, nil
}

// startLive provisions controller and daemons in-process on loopback
// sockets: the quickstart path.
func (sc Scenario) startLive(ctx context.Context, tb *liveTestbed) (*Session, error) {
	if sc.Churn.Enabled() {
		return nil, errors.New("splay: churn is only supported on simulated testbeds")
	}
	seed := sc.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Session{sc: sc, seed: seed, live: true}
	rt := core.NewLiveRuntime(seed)
	s.rt = rt
	node := livenet.NewNode(tb.host)
	cfg := controller.DefaultConfig()
	cfg.Port = controller.PortEphemeral
	if sc.ControllerPort != 0 {
		cfg.Port = sc.ControllerPort
	}
	if sc.RegisterTimeout > 0 {
		cfg.RegisterTimeout = sc.RegisterTimeout
	}
	ctl := controller.New(rt, node, cfg)
	s.ctl = ctl
	s.node = node

	var dmnIns daemon.Instruments
	if sc.Collect.Metrics {
		every, key := sc.Collect.reportDefaults()
		// The aggregator gets its own loopback address: the controller
		// host is blacklisted for applications, the monitoring plane
		// must not be.
		aggNode := livenet.NewNode("127.0.2.1")
		agg, err := metrics.NewAggregator(aggNode, sc.Collect.MetricsPort, func(fn func()) { go fn() })
		if err != nil {
			return nil, fmt.Errorf("splay: aggregator: %w", err)
		}
		agg.Authorize(key)
		s.agg = agg
		s.collect = &collectTarget{addr: agg.Addr(), key: key, every: every}
		ctlReg := metrics.NewRegistry()
		ctl.SetInstruments(controller.NewInstruments(ctlReg))
		dmnIns = daemon.NewInstruments(ctlReg)
		dmnIns.Jobs = nil
		go func() {
			rep, err := metrics.DialReporter(node, s.collect.addr, ctlReg,
				metrics.ReporterConfig{Key: key, Node: "ctl"})
			if err != nil {
				return
			}
			for !s.stopped.Load() {
				time.Sleep(every)
				if rep.Flush() != nil {
					rep.Reconnect() //nolint:errcheck // retried next period
				}
			}
		}()
	}

	if err := ctl.Start(); err != nil {
		s.Stop()
		return nil, err
	}
	ctlAddr := ctl.Addr()
	s.ctlAddr = ctlAddr
	if !sc.Faults.Empty() {
		s.rpcRules = faults.NewRPCRules(seed)
	}
	reg, err := sc.buildRegistry(s.collect, s.rpcRules)
	if err != nil {
		s.Stop()
		return nil, err
	}
	s.reg = reg

	for i := 0; i < tb.daemons; i++ {
		// Distinct loopback addresses per daemon (names must be unique
		// per controller session), each with its own probed port range
		// so several daemons and unrelated processes coexist on one
		// machine.
		name := fmt.Sprintf("%s.%d", tb.daemonIP, i+1)
		dcfg := daemon.DefaultConfig(name)
		dcfg.PortLow = tb.basePort + i*tb.portSpan
		dcfg.PortHigh = dcfg.PortLow + tb.portSpan - 1
		dcfg.ProbePorts = true
		if !sc.Faults.Empty() {
			dcfg.Reconnect = true
		}
		var lg core.Logger
		if sc.Collect.Logs != nil {
			lg = logging.New(&logging.WriterSink{W: sc.Collect.Logs}, name, dcfg.Key, nil)
		}
		mk := func() *daemon.Daemon {
			return daemon.New(rt, livenet.NewNode(name), reg, dcfg, lg)
		}
		d := mk()
		if err := d.Connect(ctlAddr); err != nil {
			s.Stop()
			return nil, err
		}
		s.slots = append(s.slots, &daemonSlot{host: -1, name: name, mk: mk, d: d})
	}
	// Readiness: poll the controller's registry instead of sleeping an
	// arbitrary delay and hoping the daemons made it.
	settle := sc.Settle
	if settle <= 0 {
		settle = 10 * time.Second
	}
	deadline := time.Now().Add(settle)
	for ctl.Daemons() < tb.daemons {
		if ctx != nil && ctx.Err() != nil {
			s.Stop()
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			got := ctl.Daemons()
			s.Stop()
			return nil, fmt.Errorf("splay: only %d/%d daemons connected after %s", got, tb.daemons, settle)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return s, nil
}

// reportDefaults resolves the collection plane's period and key.
func (c Collect) reportDefaults() (every time.Duration, key string) {
	every, key = c.ReportEvery, c.Key
	if every <= 0 {
		every = 5 * time.Second
	}
	if key == "" {
		key = "splay"
	}
	return every, key
}

// simLogger builds the daemons'/instances' logger from Collect.Logs,
// stamped with virtual time. Nil writer, nil logger.
func (sc Scenario) simLogger(rt core.Runtime) core.Logger {
	if sc.Collect.Logs == nil {
		return nil
	}
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	return logging.New(&logging.WriterSink{W: sc.Collect.Logs}, name, name, rt.Now)
}

// buildRegistry assembles the deployable application registry: built-ins
// when a spec names one, Env-wrapped factories for inline apps. A
// duplicate name surfaces as an error.
func (sc Scenario) buildRegistry(collect *collectTarget, rules *faults.RPCRules) (*core.Registry, error) {
	reg := core.NewRegistry()
	for _, spec := range sc.Apps {
		if spec.Name == "" {
			return nil, errors.New("splay: app spec needs a name")
		}
		if spec.App == nil && spec.New == nil {
			// By-name built-ins deploy through the SDK factories so they
			// get an Env: instruments and collect-plane reporting when the
			// job's params opt in, the raw engine schedule otherwise.
			nf := builtinFactory(spec.Name)
			if nf == nil {
				return nil, fmt.Errorf("splay: app %q is not built in and has no implementation", spec.Name)
			}
			spec.New = nf
		}
		if err := reg.Register(spec.Name, makeFactory(spec, collect, rules)); err != nil {
			return nil, fmt.Errorf("splay: %w", err)
		}
	}
	return reg, nil
}

// makeFactory wraps an SDK app (or factory) as an engine factory that
// hands instances a capability-scoped Env.
func makeFactory(spec AppSpec, collect *collectTarget, rules *faults.RPCRules) core.Factory {
	return func(params json.RawMessage) (core.App, error) {
		app := spec.App
		if spec.New != nil {
			a, err := spec.New(params)
			if err != nil {
				return nil, err
			}
			app = a
		}
		if app == nil {
			return nil, fmt.Errorf("splay: app %q has no implementation", spec.Name)
		}
		return core.AppFunc(func(ctx *core.AppContext) error {
			return app.Run(newEnv(ctx, spec.Env, collect, rules))
		}), nil
	}
}

// Deploy submits one application for deployment and returns immediately;
// Wait drives the run until the job is placed. The submission runs as a
// kernel task in simulation, a goroutine live — exactly the shape every
// experiment hand-wired before this API existed.
func (s *Session) Deploy(spec AppSpec) *Deployment {
	dep := &Deployment{sess: s, done: make(chan struct{})}
	if s.ctl == nil {
		dep.err = errors.New("splay: churn scenarios deploy through the trace, not the controller")
		close(dep.done)
		return dep
	}
	js := controller.JobSpec{
		App: spec.Name, Params: spec.Params, Nodes: spec.Nodes,
		Superset: spec.Superset, FullList: spec.FullList,
	}
	framesBefore := s.ctl.FramesSent()
	submit := func() {
		dep.submittedAt = s.rt.Now()
		job, err := s.ctl.Submit(js)
		// Snapshot the frame counter at completion so steady-state ping
		// traffic after the deployment does not pollute the load figure.
		dep.frames = s.ctl.FramesSent() - framesBefore
		dep.job, dep.err = job, err
		close(dep.done)
	}
	if s.k != nil {
		s.k.Go(submit)
	} else {
		go submit()
	}
	return dep
}

// Deployment is one in-flight (or completed) job submission.
type Deployment struct {
	sess        *Session
	done        chan struct{}
	job         *JobStatus
	err         error
	submittedAt time.Time
	frames      int64
}

func (d *Deployment) finished() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// SubmittedAt is the (virtual or real) time the submission entered the
// controller — the zero of per-instance deployment delay. It is set
// before any instance starts, so application code may read it.
func (d *Deployment) SubmittedAt() time.Time { return d.submittedAt }

// Frames is the controller command-frame load this deployment cost
// (valid after Wait).
func (d *Deployment) Frames() int64 { return d.frames }

// Wait drives the run until the submission completes: up to 30 windows
// of 10 simulated seconds, or five real minutes live. It returns the
// job's status; callers decide whether non-running states are fatal.
func (d *Deployment) Wait() (*JobStatus, error) {
	if d.sess.k != nil {
		for i := 0; i < 30 && !d.finished(); i++ {
			d.sess.pk.RunFor(10 * time.Second)
		}
		if !d.finished() {
			return nil, errors.New("splay: deployment did not finish within the run window")
		}
	} else {
		select {
		case <-d.done:
		case <-time.After(5 * time.Minute):
			return nil, errors.New("splay: deployment timed out")
		}
	}
	return d.job, d.err
}

// RunFor advances the scenario: d of virtual time in simulation, a real
// sleep live.
func (s *Session) RunFor(d time.Duration) {
	if s.k != nil {
		s.pk.RunFor(d)
	} else {
		time.Sleep(d)
	}
}

// Go starts fn as a driver task (kernel task in simulation, goroutine
// live). Driver tasks may Sleep and call into deployed instances.
func (s *Session) Go(fn func()) {
	if s.k != nil {
		s.k.Go(fn)
	} else {
		go fn()
	}
}

// GoAfter schedules fn as a driver task after d.
func (s *Session) GoAfter(d time.Duration, fn func()) {
	if s.k != nil {
		s.k.GoAfter(d, fn)
	} else {
		time.AfterFunc(d, func() { fn() })
	}
}

// Sleep parks the calling driver task.
func (s *Session) Sleep(d time.Duration) { s.rt.Sleep(d) }

// Now returns the scenario's current (virtual or real) time.
func (s *Session) Now() time.Time { return s.rt.Now() }

// Seed is the resolved random seed.
func (s *Session) Seed() int64 { return s.seed }

// Partitions reports how many kernel partitions the simulated testbed
// provisioned (see autoParts); 0 on live testbeds. The count is part of
// the scenario's schedule; Workers never is.
func (s *Session) Partitions() int {
	if s.pk == nil {
		return 0
	}
	return s.pk.Parts()
}

// Daemons reports the connected daemon population (under churn, the
// currently alive slot count).
func (s *Session) Daemons() int {
	if s.ctl != nil {
		return s.ctl.Daemons()
	}
	if s.ex != nil {
		return s.ex.Alive()
	}
	return 0
}

// Telemetry returns the aggregated metric view, nil when the scenario
// collects none.
func (s *Session) Telemetry() *Telemetry {
	if s.agg == nil {
		return nil
	}
	return &Telemetry{agg: s.agg}
}

// NetBytes is the total stream payload the simulated network carried —
// the denominator of the monitoring byte share (0 live: the real network
// is not ours to meter).
func (s *Session) NetBytes() uint64 {
	if !s.hasNet {
		return 0
	}
	return s.netIns.StreamBytes.Total()
}

// StopJob terminates a deployed job everywhere. In simulation the stop
// protocol runs as a kernel task and the kernel is driven until the
// daemons acknowledged.
func (s *Session) StopJob(id string) error {
	if s.ctl == nil {
		return errors.New("splay: no controller in a churn scenario")
	}
	if s.k == nil {
		return s.ctl.StopJob(id)
	}
	var err error
	done := false
	s.k.Go(func() {
		err = s.ctl.StopJob(id)
		done = true
	})
	for i := 0; i < 30 && !done; i++ {
		s.pk.RunFor(10 * time.Second)
	}
	if !done {
		return errors.New("splay: job stop did not finish within the run window")
	}
	return err
}

// Stop tears the session down: churn replay, controller, daemons,
// aggregator, and any churn-started instances. Idempotent.
func (s *Session) Stop() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	if s.ex != nil {
		s.ex.Stop()
	}
	for _, inst := range s.insts {
		if inst != nil {
			inst.Kill()
		}
	}
	if s.eng != nil {
		s.eng.Stop()
	}
	if s.host != nil && s.live {
		// Kill hosted jobs while the controller still answers; simulated
		// sessions halt with their kernel.
		s.host.svc.Close()
	}
	if s.ctl != nil {
		s.ctl.Stop()
	}
	for _, sl := range s.slots {
		// Simulated daemons need no teardown (the kernel stopped with
		// the session); live ones hold real sockets.
		if s.live && sl.d != nil {
			sl.d.Close()
		}
	}
	if s.agg != nil {
		s.agg.Close()
	}
}
