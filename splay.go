// Package splay is the SDK of the SPLAY reproduction: an integrated
// system for prototyping, deploying and evaluating large-scale
// distributed applications, after Leonini, Rivière and Felber, "SPLAY:
// Distributed Systems Evaluation Made Simple" (NSDI 2009).
//
// Applications implement App and run against an Env: a capability-scoped
// event-driven environment with cooperative tasks, periodic activities,
// RPC, sandboxed sockets and filesystem, logging, metric instruments and
// per-job deployment information. The same application code runs under
// the deterministic simulation runtime (virtual time, simulated testbeds
// — ModelNet-style clusters, a PlanetLab model, trace- or script-driven
// churn) and under the live runtime on real networks.
//
// Experiments are declared as a Scenario — testbed, applications, churn,
// collection — and executed with one call:
//
//	res, err := splay.Scenario{
//	    Testbed: splay.Live(5),
//	    Apps: []splay.AppSpec{{
//	        Name: "chord", Nodes: 4,
//	        Params: []byte(`{"bits":24,"lookups_per_min":60}`),
//	    }},
//	    Duration: 30 * time.Second,
//	}.Run(ctx)
//
// Scenario.Run provisions a controller and daemons (simulated or live),
// deploys the jobs through the REGISTER/LIST/START chain, streams
// aggregated metrics when asked to, and returns a typed Result.
// Scenario.Start returns a Session instead, for experiments that
// interleave custom phases with the provisioned system.
//
// Entry points:
//   - Scenario / Session / Env: the authoring and deployment SDK.
//   - The experiments package: every figure/table of the paper.
//   - cmd/splayctl, cmd/splayd, cmd/splay: the distributed deployment
//     chain for real multi-host testbeds.
//
// See DESIGN.md for architecture and EXPERIMENTS.md for the recorded
// reproduction results.
package splay

import (
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
)

// Deprecated facade — the pre-SDK surface, kept so existing consumers
// (cmd/splayd, cmd/splayctl, hand-built simulations) migrate
// mechanically. New code should author applications against Env and
// deploy them through Scenario.
type (
	// AppContext is the engine-level execution environment.
	//
	// Deprecated: applications receive a capability-scoped *Env;
	// Env.AppContext bridges to the engine for protocol libraries.
	AppContext = core.AppContext
	// CoreApp is the engine-level application interface.
	//
	// Deprecated: implement App (Run(*Env) error) instead.
	CoreApp = core.App
	// CoreAppFunc adapts a function to CoreApp.
	//
	// Deprecated: use AppFunc.
	CoreAppFunc = core.AppFunc
	// CoreFactory builds a CoreApp from JSON parameters.
	//
	// Deprecated: use Factory.
	CoreFactory = core.Factory
	// Runtime abstracts time and task scheduling (simulated or live).
	Runtime = core.Runtime
	// Registry maps application names to engine factories.
	//
	// Deprecated: declare applications as Scenario.Apps entries; the
	// scenario assembles the registry (built-ins included) itself.
	Registry = core.Registry
)

// NewKernel creates a discrete-event simulation kernel.
//
// Deprecated: Scenario.Start builds and drives the kernel; Session.RunFor
// advances it.
func NewKernel() *sim.Kernel { return sim.NewKernel() }

// NewSimRuntime wraps a kernel as a Runtime.
//
// Deprecated: use a simulated Testbed (PlanetLab, ModelNet, Uniform).
func NewSimRuntime(k *sim.Kernel, seed int64) Runtime { return core.NewSimRuntime(k, seed) }

// NewLiveRuntime returns the real-time runtime.
//
// Deprecated: use the Live Testbed.
func NewLiveRuntime(seed int64) Runtime { return core.NewLiveRuntime(seed) }

// NewRegistry returns an empty application registry.
//
// Deprecated: see Registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// NewAppContext builds an instance context; most users go through
// StartInstance or the daemon instead.
//
// Deprecated: instances deployed through a Scenario receive an Env.
var NewAppContext = core.NewAppContext

// StartInstance runs an application as a supervised instance.
//
// Deprecated: deploy through Scenario, or wrap a context with NewEnv.
var StartInstance = core.StartInstance
