// Package splay is the public facade of the SPLAY reproduction: an
// integrated system for prototyping, deploying and evaluating large-scale
// distributed applications, after Leonini, Rivière and Felber, "SPLAY:
// Distributed Systems Evaluation Made Simple" (NSDI 2009).
//
// Applications implement App and run against an AppContext: an
// event-driven environment with cooperative tasks, periodic activities,
// RPC, sandboxed sockets/filesystem, and per-job deployment information.
// The same application code runs under the deterministic simulation
// runtime (virtual time, simulated testbeds — ModelNet-style clusters,
// a PlanetLab model, mixed deployments, trace- or script-driven churn) or
// under the live runtime on real networks through splayctl/splayd.
//
// Entry points:
//   - NewSimRuntime / NewLiveRuntime: execution environments.
//   - NewRegistry + apps in internal/apps: deployable applications.
//   - cmd/splayctl, cmd/splayd, cmd/splay: the live deployment chain.
//   - cmd/splay-experiments: regenerate every figure/table of the paper.
//
// See DESIGN.md for architecture and EXPERIMENTS.md for the recorded
// reproduction results.
package splay

import (
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
)

// Re-exported core types: the application-facing API.
type (
	// App is a deployable SPLAY application.
	App = core.App
	// AppFunc adapts a function to App.
	AppFunc = core.AppFunc
	// AppContext is the sandboxed execution environment of one instance.
	AppContext = core.AppContext
	// JobInfo carries deployment information (job.me/nodes/position).
	JobInfo = core.JobInfo
	// Runtime abstracts time and task scheduling (simulated or live).
	Runtime = core.Runtime
	// Registry maps application names to factories.
	Registry = core.Registry
	// Factory builds an application from JSON parameters.
	Factory = core.Factory
	// Lock is the cooperative lock library.
	Lock = core.Lock
	// Logger is the application logging surface.
	Logger = core.Logger
)

// NewKernel creates a discrete-event simulation kernel.
func NewKernel() *sim.Kernel { return sim.NewKernel() }

// NewSimRuntime wraps a kernel as a Runtime.
func NewSimRuntime(k *sim.Kernel, seed int64) Runtime { return core.NewSimRuntime(k, seed) }

// NewLiveRuntime returns the real-time runtime.
func NewLiveRuntime(seed int64) Runtime { return core.NewLiveRuntime(seed) }

// NewRegistry returns an empty application registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// NewAppContext builds an instance context; most users go through
// StartInstance or the daemon instead.
var NewAppContext = core.NewAppContext

// StartInstance runs an application as a supervised instance.
var StartInstance = core.StartInstance
