package splay_test

// Fault-plane tests: timed crash/restart through the scenario surface,
// the typed deploy error, and the live chaos smoke (daemon killed and
// revived mid-session on real sockets — run under -race in CI).

import (
	"context"
	"errors"
	"testing"
	"time"

	splay "github.com/splaykit/splay"
)

// holdApp keeps its instances alive until killed, so daemon crashes kill
// something real.
var holdApp = splay.AppFunc(func(env *splay.Env) error {
	env.RunUntilKilled()
	return nil
})

// TestScenarioFaultCrashRestart drives a timed crash of two daemons and
// a later restart through a simulated scenario, checking the population
// dips and recovers and the declared assertion passes.
func TestScenarioFaultCrashRestart(t *testing.T) {
	t.Parallel()
	sc := splay.Scenario{
		Seed:    5,
		Testbed: splay.Uniform(6, 2*time.Millisecond, 0),
		Collect: splay.Collect{Metrics: true, ReportEvery: time.Second},
		Faults: splay.FaultPlan{
			Events: []splay.FaultEvent{
				splay.CrashNAt(5*time.Second, 2),
				splay.RestartAt(20 * time.Second),
			},
		},
		Assert: []splay.Assertion{
			splay.EventuallyHolds("population-reports",
				splay.Metric("", splay.StatNodes, splay.Above, 3), 0),
		},
		Apps: []splay.AppSpec{{
			Name:  "ticker",
			Nodes: 4,
			App: splay.AppFunc(func(env *splay.Env) error {
				ticks := env.Metrics().Counter("app.ticks")
				if err := env.StartReporting(); err != nil {
					return err
				}
				env.Periodic(time.Second, func() { ticks.Inc() })
				env.RunUntilKilled()
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Stop()
	job, err := sess.Deploy(sc.Apps[0]).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if job.State != splay.JobRunning {
		t.Fatalf("job state = %s, want running", job.State)
	}
	if err := sess.ArmFaults(); err != nil {
		t.Fatal(err)
	}
	sess.RunFor(10 * time.Second) // crash applied at +5s
	if got := sess.Daemons(); got != 4 {
		t.Fatalf("daemons after crash = %d, want 4", got)
	}
	sess.RunFor(30 * time.Second) // restart at +20s; reconnects settle
	if got := sess.Daemons(); got != 6 {
		t.Fatalf("daemons after restart = %d, want 6", got)
	}
	if err := sess.CheckAssertions(); err != nil {
		t.Fatalf("assertions: %v", err)
	}
}

// TestScenarioDeployErrorTyped exhausts the population before deploying
// and checks the typed *DeployError surfaces through the scenario SDK.
func TestScenarioDeployErrorTyped(t *testing.T) {
	t.Parallel()
	sc := splay.Scenario{
		Seed:            3,
		Testbed:         splay.Uniform(3, 2*time.Millisecond, 0),
		RegisterTimeout: 5 * time.Second,
		Faults: splay.FaultPlan{
			Events: []splay.FaultEvent{splay.CrashNAt(time.Second, 2)},
		},
		Apps: []splay.AppSpec{{Name: "holder", Nodes: 3, App: holdApp}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Stop()
	if err := sess.ArmFaults(); err != nil {
		t.Fatal(err)
	}
	sess.RunFor(10 * time.Second)
	if got := sess.Daemons(); got != 1 {
		t.Fatalf("daemons after crash = %d, want 1", got)
	}
	job, err := sess.Deploy(sc.Apps[0]).Wait()
	if err == nil {
		t.Fatal("deployment on an exhausted population succeeded")
	}
	var derr *splay.DeployError
	if !errors.As(err, &derr) {
		t.Fatalf("err = %T (%v), want *splay.DeployError", err, err)
	}
	if derr.Missing < 1 {
		t.Fatalf("DeployError.Missing = %d, want ≥ 1", derr.Missing)
	}
	if job == nil || job.State != splay.JobFailed {
		t.Fatalf("job = %+v, want failed state", job)
	}
}

// TestLiveChaosReconnectAndReplace is the live chaos smoke: on real
// loopback sockets, the fault plan kills a daemon mid-session and later
// revives it. The controller must drop the dead session, a fresh
// deployment must place onto the healthy remainder, and the revived
// daemon must reconnect — all while the first job keeps running.
func TestLiveChaosReconnectAndReplace(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets")
	}
	sc := splay.Scenario{
		Seed:    9,
		Testbed: splay.Live(4),
		Faults: splay.FaultPlan{
			Events: []splay.FaultEvent{
				splay.CrashNAt(500*time.Millisecond, 1),
				splay.RestartAt(2500 * time.Millisecond),
			},
		},
		Apps: []splay.AppSpec{{Name: "holder", Nodes: 2, App: holdApp}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Stop()
	job, err := sess.Deploy(sc.Apps[0]).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if job.State != splay.JobRunning {
		t.Fatalf("job state = %s, want running", job.State)
	}
	if err := sess.ArmFaults(); err != nil {
		t.Fatal(err)
	}

	waitDaemons := func(want int, deadline time.Duration, phase string) {
		t.Helper()
		end := time.Now().Add(deadline)
		for sess.Daemons() != want {
			if time.Now().After(end) {
				t.Fatalf("%s: daemons = %d after %s, want %d", phase, sess.Daemons(), deadline, want)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	waitDaemons(3, 5*time.Second, "crash")

	// Deploy against the degraded population: selection and placement
	// must land entirely on the healthy daemons.
	job2, err := sess.Deploy(splay.AppSpec{Name: "holder", Nodes: 3}).Wait()
	if err != nil {
		t.Fatalf("deploy on degraded population: %v", err)
	}
	if job2.State != splay.JobRunning || len(job2.Deployed) != 3 {
		t.Fatalf("job2 %s on %d nodes, want running on 3", job2.State, len(job2.Deployed))
	}

	waitDaemons(4, 15*time.Second, "restart")
	if err := sess.CheckAssertions(); err != nil {
		t.Fatal(err)
	}
}
