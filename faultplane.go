package splay

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/faults"
)

// daemonSlot tracks one provisioned daemon so the fault plane can crash
// and revive it. The construction closure rebuilds an identical daemon
// (same host, config, registry, instruments) when a Restart event fires;
// a restarted daemon re-registers under its old name, replacing the dead
// controller session.
type daemonSlot struct {
	host int    // simulated host index (-1 live)
	name string // daemon name (simnet host name / live loopback IP)
	mk   func() *daemon.Daemon
	d    *daemon.Daemon
	down bool
}

// actuators implements faults.Actuators over a Session: simnet hooks on
// simulated testbeds, daemon kill/restart plus the shared RPC rule set
// live. Methods run on engine tasks — kernel tasks in simulation (which
// is what the simnet fault hooks require), goroutines live; the mutex
// serializes the live case and is uncontended under the cooperative
// simulation scheduler.
type actuators struct {
	s    *Session
	logf func(format string, args ...any)

	mu        sync.Mutex
	rpcFaults []faults.RPCRule
	degrade   *faults.RPCRule // live Degrade rides the RPC filter
}

// upSlots returns the currently alive slots (callers hold a.mu).
func (a *actuators) upSlots() []*daemonSlot {
	up := make([]*daemonSlot, 0, len(a.s.slots))
	for _, sl := range a.s.slots {
		if !sl.down {
			up = append(up, sl)
		}
	}
	return up
}

// Crash implements faults.Actuators: it kills fraction (or count) of the
// alive daemons — instances die with them, and on simulated testbeds the
// host drops off the network.
func (a *actuators) Crash(fraction float64, count int) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	up := a.upSlots()
	n := count
	if n <= 0 {
		n = int(math.Round(fraction * float64(len(up))))
	}
	if n > len(up) {
		n = len(up)
	}
	if n <= 0 {
		return 0, nil
	}
	a.s.frng.Shuffle(len(up), func(i, j int) { up[i], up[j] = up[j], up[i] })
	for _, sl := range up[:n] {
		sl.d.Close()
		if a.s.nw != nil {
			a.s.nw.Host(sl.host).SetDown(true)
		}
		sl.down = true
		a.logf("faults: crashed daemon %s", sl.name)
	}
	return n, nil
}

// Restart implements faults.Actuators: every crashed slot gets a fresh
// daemon process that reconnects to the controller.
func (a *actuators) Restart() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	var firstErr error
	for _, sl := range a.s.slots {
		if !sl.down {
			continue
		}
		if a.s.nw != nil {
			a.s.nw.Host(sl.host).SetDown(false)
		}
		sl.d = sl.mk()
		if err := sl.d.Connect(a.s.ctlAddr); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue // still down; a later Restart may succeed
		}
		sl.down = false
		n++
	}
	return n, firstErr
}

// Partition implements faults.Actuators. Simulated testbeds get a real
// network bipartition (fraction of the daemons cut away; controller and
// monitoring hosts stay on the majority side). Live testbeds have no
// substrate to cut, so the selected daemons' controller sessions are
// dropped instead — a control-plane partition that exercises reconnect
// while application links stay up.
func (a *actuators) Partition(fraction float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	slots := a.s.slots
	n := int(math.Round(fraction * float64(len(slots))))
	if n <= 0 || n >= len(slots) {
		return fmt.Errorf("splay: partition fraction %g selects %d of %d daemons", fraction, n, len(slots))
	}
	idx := a.s.frng.Perm(len(slots))[:n]
	if a.s.nw != nil {
		side := make([]bool, a.s.nHosts)
		for _, i := range idx {
			side[slots[i].host] = true
		}
		a.s.nw.Partition(side)
		return nil
	}
	for _, i := range idx {
		a.s.ctl.DropDaemon(slots[i].name)
	}
	return nil
}

// Heal implements faults.Actuators: the partition is removed (no-op
// live — dropped daemons redial on their own).
func (a *actuators) Heal() error {
	if a.s.nw != nil {
		a.s.nw.HealPartition()
	}
	return nil
}

// Degrade implements faults.Actuators: simulated testbeds degrade the
// daemon hosts' links in the network model; live the degradation rides
// the RPC message filter (delay plus drop probability on every method).
func (a *actuators) Degrade(extraLatency time.Duration, loss float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.s.nw != nil {
		hosts := make([]bool, a.s.nHosts)
		for _, sl := range a.s.slots {
			hosts[sl.host] = true
		}
		a.s.nw.Degrade(hosts, extraLatency, loss)
		return nil
	}
	if a.s.rpcRules == nil {
		return errors.New("splay: live degradation needs the RPC fault filter (non-empty fault plan)")
	}
	a.degrade = &faults.RPCRule{Drop: loss, Delay: extraLatency}
	a.rebuildRules()
	return nil
}

// Restore implements faults.Actuators.
func (a *actuators) Restore() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.s.nw != nil {
		a.s.nw.Restore()
		return nil
	}
	a.degrade = nil
	a.rebuildRules()
	return nil
}

// SetRPCFault implements faults.Actuators: filters compose — each call
// adds one rule; ClearRPCFault removes them all.
func (a *actuators) SetRPCFault(method string, drop float64, delay time.Duration) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.s.rpcRules == nil {
		return errors.New("splay: the RPC fault filter is only wired for non-empty fault plans")
	}
	a.rpcFaults = append(a.rpcFaults, faults.RPCRule{Method: method, Drop: drop, Delay: delay})
	a.rebuildRules()
	return nil
}

// ClearRPCFault implements faults.Actuators.
func (a *actuators) ClearRPCFault() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.s.rpcRules == nil {
		return nil
	}
	a.rpcFaults = nil
	a.rebuildRules()
	return nil
}

// rebuildRules reinstalls the shared RPC rule set from the current
// degradation and fault filters (callers hold a.mu).
func (a *actuators) rebuildRules() {
	a.s.rpcRules.Clear()
	if a.degrade != nil {
		a.s.rpcRules.Add(*a.degrade)
	}
	for _, r := range a.rpcFaults {
		a.s.rpcRules.Add(r)
	}
}

// Grow implements faults.Actuators: count additional instances of the
// scenario's first application are deployed through the controller. The
// submission runs as its own driver task so a slow deployment never
// stalls the engine's evaluation ticks.
func (a *actuators) Grow(count int) error {
	if count <= 0 {
		return fmt.Errorf("splay: grow count %d", count)
	}
	if a.s.ctl == nil || len(a.s.sc.Apps) == 0 {
		return errors.New("splay: grow needs a controller-deployed application")
	}
	spec := a.s.sc.Apps[0]
	js := controller.JobSpec{
		App: spec.Name, Params: spec.Params, Nodes: count,
		Superset: spec.Superset, FullList: spec.FullList,
	}
	a.s.Go(func() {
		if _, err := a.s.ctl.Submit(js); err != nil {
			a.logf("faults: grow %d: %v", count, err)
		}
	})
	return nil
}

// ArmFaults starts the scenario's fault plan and assertions relative to
// now — Run calls it right after the deployments finish; Start callers
// that interleave custom phases arm explicitly when their system is in
// the state the plan's clock should start from. Arming an empty plan
// with no assertions is a no-op; arming twice is idempotent.
func (s *Session) ArmFaults() error {
	if s.eng != nil {
		return nil
	}
	plan := s.sc.Faults
	asserts := s.sc.Assert
	if plan.Empty() && len(asserts) == 0 {
		return nil
	}
	if s.ctl == nil {
		return errors.New("splay: the fault plane drives controller-provisioned scenarios")
	}
	if (len(plan.Rules) > 0 || len(asserts) > 0) && s.agg == nil {
		return errors.New("splay: trigger rules and assertions need Collect.Metrics")
	}
	var view faults.View
	if s.agg != nil {
		view = s.agg
	}
	logf := func(string, ...any) {}
	if lg := s.sc.simLogger(s.rt); lg != nil {
		logf = lg.Printf
	}
	// Victim selection draws from its own seeded stream, so injecting a
	// fault never perturbs the runtime's random sequence.
	s.frng = rand.New(rand.NewSource(s.seed ^ 0x5fa17))
	s.act = &actuators{s: s, logf: logf}
	s.eng = faults.NewEngine(s.rt, view, s.act, plan, asserts, logf)
	s.eng.Arm()
	return nil
}

// CheckAssertions runs the final assertion evaluation and returns the
// typed *AssertionError when any predicate was violated — nil otherwise,
// including when no fault engine was ever armed.
func (s *Session) CheckAssertions() error {
	if s.eng == nil {
		return nil
	}
	if aerr := s.eng.Finish(); aerr != nil {
		return aerr
	}
	return nil
}

// Firings returns the trigger-rule activations so far, in firing order.
func (s *Session) Firings() []Firing {
	if s.eng == nil {
		return nil
	}
	return s.eng.Firings()
}
