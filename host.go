package splay

// The hosting plane at the SDK surface: Session.Host turns a
// provisioned session into a resident multi-tenant platform (the
// paper's §4 splayweb vision — many users, one daemon fleet). Tenants
// submit serialized Scenarios (Scenario.Marshal) against per-tenant
// keys; the service queues, fair-share places, watches and kills their
// jobs on the session's shared population. The same service runs over
// a simulated fleet in virtual time (the hostplane experiment) and
// over a live one behind splayd -host, whose HTTP API splay.Connect
// and splayctl submit/jobs/watch/kill speak.

import (
	"errors"
	"net/http"
	"time"

	"github.com/splaykit/splay/internal/hosting"
	"github.com/splaykit/splay/internal/metrics"
)

// Hosting-plane types, aliased from the service like the rest of the
// SDK surface.
type (
	// HostTenant is one hosted account: name, key, quota.
	HostTenant = hosting.Tenant
	// HostQuota bounds a tenant's share (zero fields = unlimited).
	HostQuota = hosting.Quota
	// HostJob is a hosted job's externally visible state.
	HostJob = hosting.JobView
	// HostResult is a finished hosted job's outcome.
	HostResult = hosting.ResultView
	// HostUsage is a tenant's accounting snapshot.
	HostUsage = hosting.UsageView
	// HostError is the typed error every hosting operation returns.
	HostError = hosting.JobError
	// HostJobState is a hosted job's lifecycle position.
	HostJobState = hosting.JobState
)

// Hosted job states.
const (
	HostQueued    = hosting.Queued
	HostDeploying = hosting.Deploying
	HostRunning   = hosting.Running
	HostDone      = hosting.Done
	HostFailed    = hosting.Failed
	HostKilled    = hosting.Killed
)

// HostConfig parameterizes a session's hosting plane.
type HostConfig struct {
	// Tenants are the accounts admitted at startup.
	Tenants []HostTenant
	// Capacity is the instance budget jobs are packed into (0 sizes it
	// to the live daemon count at each dispatch).
	Capacity int
	// DeployAttempts re-queues a job that many times after a deploy
	// failure before failing it (0 = 2).
	DeployAttempts int
	// RetryDelay spaces re-placement attempts (0 = 1s).
	RetryDelay time.Duration
	// DefaultDuration runs jobs that declare none (0 = 30s).
	DefaultDuration time.Duration
	// MaxDuration clamps declared job durations (0 = unclamped).
	MaxDuration time.Duration
	// Catalog validates submissions at admission (app references and
	// typed parameters) and enables config-document submissions,
	// compiled at the door to the canonical wire form. Nil admits any
	// wire JSON unvalidated and declines documents; BuiltinCatalog()
	// is the usual choice.
	Catalog *Catalog
}

// Host is a session's resident hosting plane.
type Host struct {
	svc  *hosting.Service
	sess *Session
}

// Host starts the hosting plane over the session's fleet. When the
// scenario collects metrics, the service's per-tenant instruments
// (host.deploys.<tenant>, host.frames.<tenant>, …) stream to the
// aggregator as node "host".
func (s *Session) Host(cfg HostConfig) (*Host, error) {
	if s.ctl == nil {
		return nil, errors.New("splay: churn scenarios have no controller to host on")
	}
	if s.host != nil {
		return nil, errors.New("splay: session already hosts")
	}
	hcfg := hosting.Config{
		Capacity:        cfg.Capacity,
		DeployAttempts:  cfg.DeployAttempts,
		RetryDelay:      cfg.RetryDelay,
		DefaultDuration: cfg.DefaultDuration,
		MaxDuration:     cfg.MaxDuration,
		Catalog:         cfg.Catalog,
	}
	var reg *metrics.Registry
	if s.collect != nil {
		reg = metrics.NewRegistry()
		hcfg.Metrics = reg
	}
	svc := hosting.New(s.rt, s.ctl, hcfg)
	for _, t := range cfg.Tenants {
		if err := svc.AddTenant(t); err != nil {
			return nil, err
		}
	}
	h := &Host{svc: svc, sess: s}
	s.host = h
	if reg != nil {
		// The host's instrument stream rides the session's collection
		// plane exactly like the controller's (node "ctl" ↔ node "host").
		addr, key, every := s.collect.addr, s.collect.key, s.collect.every
		if s.k != nil {
			s.k.Go(func() {
				rep, err := metrics.DialReporter(s.node, addr, reg,
					metrics.ReporterConfig{Key: key, Node: "host"})
				if err != nil {
					return
				}
				for {
					s.k.Sleep(every)
					if s.stopped.Load() {
						return
					}
					rep.Flush() //nolint:errcheck // monitoring is best effort
				}
			})
		} else {
			go func() {
				rep, err := metrics.DialReporter(s.node, addr, reg,
					metrics.ReporterConfig{Key: key, Node: "host"})
				if err != nil {
					return
				}
				for !s.stopped.Load() {
					time.Sleep(every)
					if rep.Flush() != nil {
						rep.Reconnect() //nolint:errcheck // retried next period
					}
				}
			}()
		}
	}
	return h, nil
}

// Submit serializes a scenario and submits it for the tenant key.
func (h *Host) Submit(key string, sc Scenario) (HostJob, error) {
	data, err := sc.Marshal()
	if err != nil {
		return HostJob{}, err
	}
	return h.svc.Submit(key, data)
}

// SubmitRaw submits an already-serialized scenario.
func (h *Host) SubmitRaw(key string, scenario []byte) (HostJob, error) {
	return h.svc.Submit(key, scenario)
}

// Job returns one job's state.
func (h *Host) Job(key, id string) (HostJob, error) { return h.svc.Job(key, id) }

// Jobs lists the tenant's jobs in submission order.
func (h *Host) Jobs(key string) ([]HostJob, error) { return h.svc.Jobs(key) }

// Result returns a finished job's result.
func (h *Host) Result(key, id string) (HostResult, error) { return h.svc.Result(key, id) }

// Kill dequeues or stops a job.
func (h *Host) Kill(key, id string) error { return h.svc.Kill(key, id) }

// Usage reports the tenant's accounting.
func (h *Host) Usage(key, tenant string) (HostUsage, error) { return h.svc.Usage(key, tenant) }

// Handler exposes the hosting plane's HTTP/JSON API (POST /jobs,
// GET /jobs/{id}, GET /jobs/{id}/result, DELETE /jobs/{id},
// GET /tenants/{t}/usage), authenticated per tenant key.
func (h *Host) Handler() http.Handler { return h.svc.Handler() }

// Close stops admissions and kills every live job. On a simulated
// session call it from a kernel task (Session.Go); tearing the session
// down with Stop is also enough.
func (h *Host) Close() { h.svc.Close() }
