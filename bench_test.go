package splay_test

// Benchmark harness: one testing.B target per table/figure of the paper's
// evaluation (§5). Each bench runs its experiment at reduced scale so the
// full suite stays tractable; cmd/splay-experiments runs them at paper
// scale. go test -bench=. -benchmem regenerates everything.
//
// The package is an external test (splay_test): the experiments it runs
// are built on the splay scenario SDK, so an in-package test would be an
// import cycle.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/splaykit/splay/experiments"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Scale: scale, Seed: int64(i + 1), Out: io.Discard})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		_ = res
	}
}

func BenchmarkFig3PlanetLabRTT(b *testing.B)        { benchExperiment(b, "fig3", 0.2) }
func BenchmarkFig4ChurnScript(b *testing.B)         { benchExperiment(b, "fig4", 1) }
func BenchmarkTable1LOC(b *testing.B)               { benchExperiment(b, "tab1", 1) }
func BenchmarkFig6aChordHops(b *testing.B)          { benchExperiment(b, "fig6a", 0.1) }
func BenchmarkFig6bChordDelays(b *testing.B)        { benchExperiment(b, "fig6b", 0.1) }
func BenchmarkFig6cChordPlanetLab(b *testing.B)     { benchExperiment(b, "fig6c", 0.12) }
func BenchmarkFig7aPastryCDF(b *testing.B)          { benchExperiment(b, "fig7a", 0.15) }
func BenchmarkFig7bFreePastryScaling(b *testing.B)  { benchExperiment(b, "fig7b", 0.08) }
func BenchmarkFig7cSplayPastryScaling(b *testing.B) { benchExperiment(b, "fig7c", 0.05) }
func BenchmarkFig8Footprint(b *testing.B)           { benchExperiment(b, "fig8", 1) }
func BenchmarkFig9MixedDeployment(b *testing.B)     { benchExperiment(b, "fig9", 0.08) }
func BenchmarkFig10MassiveFailure(b *testing.B)     { benchExperiment(b, "fig10", 0.05) }
func BenchmarkFig11OvernetChurn(b *testing.B)       { benchExperiment(b, "fig11", 0.05) }
func BenchmarkFig12DeploymentTime(b *testing.B)     { benchExperiment(b, "fig12", 0.2) }
func BenchmarkFig13TreeDissemination(b *testing.B)  { benchExperiment(b, "fig13", 0.2) }
func BenchmarkFig14WebCache(b *testing.B)           { benchExperiment(b, "fig14", 0.1) }
func BenchmarkCtlplaneDeployment(b *testing.B)      { benchExperiment(b, "ctlplane", 0.05) }
func BenchmarkLookup10kChordAtScale(b *testing.B)   { benchExperiment(b, "lookup10k", 0.02) }
func BenchmarkLookup100kSharded(b *testing.B)       { benchExperiment(b, "lookup100k", 0.002) }
func BenchmarkLookup1mMemoryPlane(b *testing.B)     { benchExperiment(b, "lookup1m", 0.0002) }
func BenchmarkObsplaneMonitoring(b *testing.B)      { benchExperiment(b, "obsplane", 0.05) }
func BenchmarkFaultplaneClosedLoop(b *testing.B)    { benchExperiment(b, "faultplane", 0.05) }
func BenchmarkHostplanePlatform(b *testing.B)       { benchExperiment(b, "hostplane", 0.05) }
func BenchmarkConfigplaneTwinRuns(b *testing.B)     { benchExperiment(b, "configplane", 1) }
func BenchmarkGossipConvergence(b *testing.B)       { benchExperiment(b, "gossip", 1) }

// BenchmarkFig8RealMemoryPerInstance measures the actual Go heap consumed
// per Pastry instance, the companion to Fig. 8's modeled footprint: the
// paper reports under 1.5 MB per SPLAY instance.
func BenchmarkFig8RealMemoryPerInstance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const n = 400
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)

		k := sim.NewKernel()
		nw := simnet.New(k, simnet.Symmetric{RTT: time.Millisecond}, n, 1)
		rt := core.NewSimRuntime(k, 1)
		rng := rand.New(rand.NewSource(1))
		nodes := make([]*pastry.Node, 0, n)
		for j := 0; j < n; j++ {
			addr := transport.Addr{Host: simnet.HostName(j), Port: 9000}
			ctx := core.NewAppContext(rt, nw.Node(j), core.JobInfo{Me: addr}, nil)
			cfg := pastry.DefaultConfig()
			id := pastry.ID(rng.Uint64())
			cfg.ID = &id
			nodes = append(nodes, pastry.New(ctx, cfg))
		}
		k.Go(func() {
			for _, node := range nodes {
				node.Start() //nolint:errcheck
			}
		})
		k.Run()
		if err := pastry.BuildNetwork(nodes, pastry.BuildOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		perInstance := float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
		b.ReportMetric(perInstance/1024, "KB/instance")
		runtime.KeepAlive(nodes)
	}
}

// Ablation: RPC connection pooling on versus off (DESIGN.md design
// choice; the paper credits FreePastry's pool for part of its tuning).
func BenchmarkAblationRPCPool(b *testing.B) {
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "unpooled"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel()
				nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond}, 2, 1)
				rt := core.NewSimRuntime(k, 1)
				sctx := core.NewAppContext(rt, nw.Node(1), core.JobInfo{Me: transport.Addr{Host: "n1", Port: 80}}, nil)
				benchStartEcho(b, sctx)
				var virtual time.Duration
				k.Go(func() {
					cctx := core.NewAppContext(rt, nw.Node(0), core.JobInfo{}, nil)
					cl := newBenchClient(cctx, pooled)
					start := k.Now()
					for j := 0; j < 200; j++ {
						cl(transport.Addr{Host: "n1", Port: 80})
					}
					virtual = k.Now().Sub(start)
				})
				k.Run()
				b.ReportMetric(float64(virtual.Milliseconds())/200, "virtual-ms/call")
			}
		})
	}
}

// Ablation: superset selection versus exact probing (Fig. 12's subject).
func BenchmarkAblationSuperset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("fig12", experiments.Options{Scale: 0.2, Seed: int64(i + 1), Out: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		exact := res.Metrics["t_200_110"]
		wide := res.Metrics["t_200_200"]
		b.ReportMetric(exact, "s-at-110pct")
		b.ReportMetric(wide, "s-at-200pct")
	}
}

// Helpers for the RPC ablation (full RPC benchmarks live in
// internal/rpc).

func benchStartEcho(b *testing.B, ctx *core.AppContext) {
	b.Helper()
	ctx.Runtime().Go(func() {
		srv := rpc.NewServer(ctx)
		srv.Register("echo", func(a rpc.Args) (any, error) { return a.String(0), nil })
		if err := srv.Start(ctx.Job.Me.Port); err != nil {
			b.Errorf("echo server: %v", err)
		}
	})
}

func newBenchClient(ctx *core.AppContext, pooled bool) func(transport.Addr) {
	cl := rpc.NewClient(ctx)
	cl.SetPooling(pooled)
	return func(to transport.Addr) {
		cl.CallTimeout(to, 10*time.Second, "echo", "x") //nolint:errcheck
	}
}

// BenchmarkKernelThroughput measures raw simulator event throughput, the
// number that bounds every experiment's wall-clock cost. It drives the
// kernel's pooled fast path (AfterFunc), the entry point every internal
// hot call site uses; steady state must stay at 0 allocs/op (DESIGN.md
// records the trajectory).
func BenchmarkKernelThroughput(b *testing.B) {
	k := sim.NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.AfterFunc(time.Microsecond, tick)
		}
	}
	k.AfterFunc(time.Microsecond, tick)
	b.ResetTimer()
	k.Run()
}

// Guard: experiments registry stays complete.
func TestBenchTargetsCoverAllExperiments(t *testing.T) {
	want := []string{"configplane", "ctlplane", "faultplane", "fig3", "fig4", "fig6a", "fig6b",
		"fig6c", "fig7a", "fig7b", "fig7c", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "gossip", "hostplane", "lookup10k", "lookup100k", "lookup1m", "obsplane", "tab1"}
	have := experiments.IDs()
	set := map[string]bool{}
	for _, id := range have {
		set[id] = true
	}
	for _, id := range want {
		if !set[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, benches cover %d: %v", len(have), len(want), have)
	}
	fmt.Fprintln(io.Discard)
}
