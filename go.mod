module github.com/splaykit/splay

go 1.24
