// Package experiments is the public surface of the paper-reproduction
// suite: every figure and table of SPLAY's evaluation (§5) as a named,
// parameterized experiment. It re-exports the internal engine so
// consumers — cmd/splay-experiments, external harnesses — run the suite
// without importing internal packages.
//
// Each experiment is a single-threaded deterministic simulation
// (several, like ctlplane and obsplane, are built on the splay scenario
// SDK); RunParallel shards independent experiments across CPU cores with
// byte-identical output.
package experiments

import (
	internal "github.com/splaykit/splay/internal/experiments"
)

type (
	// Options tunes an experiment run (scale, seed, output writer).
	Options = internal.Options
	// Result carries an experiment's headline metrics.
	Result = internal.Result
	// Spec pairs an experiment id with its options for batch runs.
	Spec = internal.Spec
	// Outcome is one completed Spec: result, error, captured output.
	Outcome = internal.Outcome
)

// Run executes the named experiment.
func Run(id string, opt Options) (*Result, error) { return internal.Run(id, opt) }

// IDs lists registered experiments in order.
func IDs() []string { return internal.IDs() }

// RunParallel runs the specs sharded across workers (0 = GOMAXPROCS)
// and returns outcomes in submission order.
func RunParallel(specs []Spec, workers int) []Outcome {
	return internal.RunParallel(specs, workers)
}

// RunParallelFunc runs the specs sharded across workers, invoking onDone
// as each finishes (any order); it returns when all have.
func RunParallelFunc(specs []Spec, workers int, onDone func(i int, oc Outcome)) {
	internal.RunParallelFunc(specs, workers, onDone)
}
