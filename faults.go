package splay

import (
	"time"

	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/faults"
)

// Fault-plane vocabulary, re-exported as aliases so scenarios declare
// fault schedules, closed-loop triggers and assertions without importing
// internal packages. A Scenario with a zero FaultPlan and no assertions
// behaves (and schedules) exactly as before the fault plane existed.
type (
	// FaultPlan is a scenario's declarative fault schedule: timed
	// events plus closed-loop trigger rules.
	FaultPlan = faults.Plan
	// FaultEvent is one timed fault injection (At relative to arming,
	// which happens right after deployment).
	FaultEvent = faults.Event
	// FaultKind enumerates the injectable faults.
	FaultKind = faults.EventKind
	// TriggerRule is one closed-loop trigger: when a metric condition
	// holds for long enough, an action fires through the fault plane.
	TriggerRule = faults.Rule
	// TriggerCondition is one metric predicate over the aggregated view.
	TriggerCondition = faults.Condition
	// TriggerAction is a fired rule's effect.
	TriggerAction = faults.Action
	// TriggerStat selects how a condition reads the telemetry.
	TriggerStat = faults.Stat
	// TriggerOp compares the observed statistic against the threshold.
	TriggerOp = faults.Op
	// Firing records one rule activation (see Session.Firings).
	Firing = faults.Firing
	// Assertion is one metric predicate a run must satisfy.
	Assertion = faults.Assertion
	// AssertKind selects an assertion's temporal semantics.
	AssertKind = faults.AssertKind
	// AssertionError enumerates every assertion a run violated; Run
	// returns it alongside the (still valid) Result.
	AssertionError = faults.AssertionError
	// AssertionFailure is one violated assertion.
	AssertionFailure = faults.AssertionFailure
	// Backoff is a jittered exponential backoff schedule (daemon
	// reconnect, RPC redial pacing).
	Backoff = faults.Backoff
	// DeployError is a failed deployment's full account: every daemon
	// that failed a phase and how many slots stayed unplaced.
	DeployError = controller.DeployError
	// DeployFailure is one daemon's failure during one deploy phase.
	DeployFailure = controller.DeployFailure
)

// Fault event kinds.
const (
	FaultCrash     = faults.Crash
	FaultRestart   = faults.Restart
	FaultPartition = faults.Partition
	FaultHeal      = faults.Heal
	FaultDegrade   = faults.Degrade
	FaultRestore   = faults.Restore
	FaultRPC       = faults.RPCFault
	FaultRPCClear  = faults.RPCClear
)

// Trigger condition statistics.
const (
	StatTotal = faults.StatTotal
	StatRate  = faults.StatRate
	StatGauge = faults.StatGauge
	StatMean  = faults.StatMean
	StatP50   = faults.StatP50
	StatP90   = faults.StatP90
	StatP99   = faults.StatP99
	StatNodes = faults.StatNodes
)

// Trigger comparison operators.
const (
	Above = faults.Above
	Below = faults.Below
)

// Trigger action kinds.
const (
	ActKill   = faults.ActKill
	ActHeal   = faults.ActHeal
	ActGrow   = faults.ActGrow
	ActInject = faults.ActInject
)

// Assertion kinds.
const (
	AssertEventually = faults.Eventually
	AssertAlways     = faults.Always
	AssertConverges  = faults.Converges
)

// CrashAt kills a fraction (0 < f < 1) of the daemon population at +at.
func CrashAt(at time.Duration, fraction float64) FaultEvent {
	return FaultEvent{At: at, Kind: FaultCrash, Fraction: fraction}
}

// CrashNAt kills exactly count daemons at +at.
func CrashNAt(at time.Duration, count int) FaultEvent {
	return FaultEvent{At: at, Kind: FaultCrash, Count: count}
}

// RestartAt revives every crashed daemon at +at.
func RestartAt(at time.Duration) FaultEvent {
	return FaultEvent{At: at, Kind: FaultRestart}
}

// PartitionAt cuts a fraction of the population away from the rest at
// +at: crossing connections reset, crossing dials blackhole.
func PartitionAt(at time.Duration, fraction float64) FaultEvent {
	return FaultEvent{At: at, Kind: FaultPartition, Fraction: fraction}
}

// HealAt removes the partition at +at.
func HealAt(at time.Duration) FaultEvent {
	return FaultEvent{At: at, Kind: FaultHeal}
}

// DegradeAt adds latency and datagram loss to every daemon link at +at.
func DegradeAt(at time.Duration, extraLatency time.Duration, loss float64) FaultEvent {
	return FaultEvent{At: at, Kind: FaultDegrade, ExtraLatency: extraLatency, Loss: loss}
}

// RestoreAt removes the degradation at +at.
func RestoreAt(at time.Duration) FaultEvent {
	return FaultEvent{At: at, Kind: FaultRestore}
}

// RPCFaultAt installs a message filter at +at: outgoing RPC requests
// matching method ("" = all) are dropped with probability drop and the
// survivors delayed by delay.
func RPCFaultAt(at time.Duration, method string, drop float64, delay time.Duration) FaultEvent {
	return FaultEvent{At: at, Kind: FaultRPC, Method: method, Drop: drop, Delay: delay}
}

// RPCClearAt removes every RPC filter at +at.
func RPCClearAt(at time.Duration) FaultEvent {
	return FaultEvent{At: at, Kind: FaultRPCClear}
}

// Metric builds the condition "stat(name) op value" for trigger rules
// and assertions.
func Metric(name string, stat TriggerStat, op TriggerOp, value float64) TriggerCondition {
	return TriggerCondition{Metric: name, Stat: stat, Op: op, Value: value}
}

// ConvergesWithin asserts cond starts holding within the deadline and
// then holds at every later evaluation tick until the end of the run.
func ConvergesWithin(name string, cond TriggerCondition, within time.Duration) Assertion {
	return Assertion{Name: name, Cond: cond, Kind: AssertConverges, Within: within}
}

// EventuallyHolds asserts cond holds at some evaluation tick within the
// deadline (0 = any time before the run ends).
func EventuallyHolds(name string, cond TriggerCondition, within time.Duration) Assertion {
	return Assertion{Name: name, Cond: cond, Kind: AssertEventually, Within: within}
}

// StaysBelow asserts stat(metric) < value at every evaluation tick after
// the grace period.
func StaysBelow(name, metric string, stat TriggerStat, value float64, after time.Duration) Assertion {
	return Assertion{Name: name, Cond: TriggerCondition{Metric: metric, Stat: stat, Op: Below, Value: value}, Kind: AssertAlways, After: after}
}
