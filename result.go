package splay

import (
	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/stats"
)

// Deployment/result vocabulary re-exported from the engine.
type (
	// JobStatus reports a deployed job's progress (id, state, deployed
	// instance addresses, start time).
	JobStatus = controller.JobStatus
	// JobState is the §3.1 job state machine.
	JobState = controller.JobState
	// Series is a sorted sample view: Percentile/Quantile/CDF over it
	// cost one binary search each (one sort total, amortized).
	Series = stats.Sorted
	// Durations is an unsorted sample collection; Sorted() yields a
	// Series.
	Durations = stats.Durations
	// SeriesSnapshot is one aggregated series in a Telemetry snapshot.
	SeriesSnapshot = metrics.SeriesSnapshot
)

// Job states.
const (
	JobIdle     = controller.JobIdle
	JobSelected = controller.JobSelected
	JobRunning  = controller.JobRunning
	JobDone     = controller.JobDone
	JobFailed   = controller.JobFailed
)

// Result is what a one-shot Scenario.Run returns: the deployed jobs and,
// when the scenario collected metrics, the aggregated population view.
type Result struct {
	// Jobs holds one status per deployed application, in Apps order.
	Jobs []*JobStatus
	// Metrics is the aggregated live view (nil unless Collect.Metrics).
	Metrics *Telemetry
}

// Telemetry is the merged, population-wide metric view the scenario's
// aggregator accumulated from every reporting instance (plus the
// controller's own stream). All accessors are safe during and after the
// run — this is the §3.4 "observe a live system" surface.
type Telemetry struct {
	agg *metrics.Aggregator
}

// Nodes is the number of distinct streams that have reported.
func (t *Telemetry) Nodes() int { return t.agg.Nodes() }

// Received reports the total report frames and wire bytes absorbed: the
// monitoring bill's numerator.
func (t *Telemetry) Received() (frames, bytes uint64) { return t.agg.Received() }

// Counter sums the named counter across every reporting node.
func (t *Telemetry) Counter(name string) uint64 { return t.agg.CounterTotal(name) }

// GaugeSum sums the named gauge's last value across nodes.
func (t *Telemetry) GaugeSum(name string) int64 { return t.agg.GaugeSum(name) }

// HistStats returns the named histogram's population count and sum.
func (t *Telemetry) HistStats(name string) (count uint64, sum int64) {
	return t.agg.HistStats(name)
}

// Series expands the named histogram's merged buckets into a sorted
// sample view for percentile queries.
func (t *Telemetry) Series(name string) Series { return t.agg.HistSorted(name) }

// PerNode returns one sorted sample per reporting node for the named
// counter or gauge — the cross-population distribution of a per-node
// total.
func (t *Telemetry) PerNode(name string) Series { return t.agg.PerNodeSorted(name) }

// Snapshot renders every aggregated series, for serving or printing.
func (t *Telemetry) Snapshot() []SeriesSnapshot { return t.agg.Snapshot() }
