package splay_test

// Hosting plane at the SDK surface: a live loopback fleet hosts two
// tenants submitting concurrently over the real HTTP API through
// splay.Connect (run under -race in CI's hostplane job), plus the
// submit-to-start latency benchmark behind BENCH_host.json.

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	splay "github.com/splaykit/splay"
)

// residentScenario provisions the platform fleet: n live daemons and a
// registry holding the "idler" app hosted submissions reference.
func residentScenario(n int) splay.Scenario {
	return splay.Scenario{
		Name:    "resident",
		Testbed: splay.Live(n),
		Apps: []splay.AppSpec{{
			Name: "idler",
			App:  splay.AppFunc(func(env *splay.Env) error { return nil }),
		}},
	}
}

// hostedJob builds a submission referencing the platform's app by name.
func hostedJob(name string, nodes int, dur time.Duration) splay.Scenario {
	return splay.Scenario{
		Name:     name,
		Apps:     []splay.AppSpec{{Name: "idler", Nodes: nodes}},
		Duration: dur,
	}
}

func TestHostPlaneLiveLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets")
	}
	sess, err := residentScenario(6).Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Stop()
	host, err := sess.Host(splay.HostConfig{
		Tenants: []splay.HostTenant{
			{Name: "alice", Key: "ka", Quota: splay.HostQuota{MaxNodes: 4}},
			{Name: "bob", Key: "kb"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(host.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Two tenants run overlapping jobs through the wire API.
	var wg sync.WaitGroup
	results := make([]splay.HostResult, 2)
	errs := make([]error, 2)
	for i, sub := range []struct{ key, name string }{{"ka", "a"}, {"kb", "b"}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := splay.Connect(srv.URL, sub.key)
			cl.Poll = 50 * time.Millisecond
			results[i], errs[i] = cl.Run(ctx, hostedJob(sub.name, 2, 2*time.Second))
		}()
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].State != splay.HostDone {
			t.Errorf("job %d state = %s, want done: %s", i, results[i].State, results[i].Error)
		}
		if len(results[i].Apps) != 1 || results[i].Apps[0].Deployed != 2 {
			t.Errorf("job %d placement = %+v", i, results[i].Apps)
		}
	}

	// Quota exhaustion is a typed error over the wire, not a hang.
	alice := splay.Connect(srv.URL, "ka")
	if _, err := alice.Submit(ctx, hostedJob("big", 5, time.Second)); err == nil {
		t.Error("over-quota submission accepted")
	} else {
		var herr *splay.HostError
		if !errors.As(err, &herr) || string(herr.Code) != "quota" {
			t.Errorf("over-quota error = %v, want HostError quota", err)
		}
	}
	// So is a bad key.
	if _, err := splay.Connect(srv.URL, "nope").Jobs(ctx); err == nil {
		t.Error("bad key accepted")
	} else {
		var herr *splay.HostError
		if !errors.As(err, &herr) || string(herr.Code) != "auth" {
			t.Errorf("bad-key error = %v, want HostError auth", err)
		}
	}
	// Usage reflects the finished runs.
	u, err := alice.Usage(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if u.TotalJobs != 1 || u.RunningJobs != 0 {
		t.Errorf("alice usage = %+v, want 1 total job and nothing running (rejects are never admitted)", u)
	}
}

// BenchmarkHostSubmitLatency measures submit-to-start over the live
// hosting plane: the time from POST /jobs to the job reporting running.
func BenchmarkHostSubmitLatency(b *testing.B) {
	sess, err := residentScenario(4).Start(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Stop()
	host, err := sess.Host(splay.HostConfig{
		Tenants: []splay.HostTenant{{Name: "bench", Key: "kbench"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	data, err := hostedJob("bench", 2, time.Hour).Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view, err := host.SubmitRaw("kbench", data)
		if err != nil {
			b.Fatal(err)
		}
		for {
			jv, err := host.Job("kbench", view.ID)
			if err != nil {
				b.Fatal(err)
			}
			if jv.State == splay.HostRunning || jv.State.Terminal() {
				if jv.State != splay.HostRunning {
					b.Fatalf("job %s settled as %s: %s", jv.ID, jv.State, jv.Error)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}
		b.StopTimer()
		if err := host.Kill("kbench", view.ID); err != nil {
			b.Fatal(err)
		}
		// Wait for the nodes to come back so the next round starts clean.
		for {
			u, err := host.Usage("kbench", "bench")
			if err != nil {
				b.Fatal(err)
			}
			if u.RunningNodes == 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		b.StartTimer()
	}
}
