package splay

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/splaykit/splay/internal/hosting"
)

// Remote is a client for a hosting plane (splayd -host, or any
// Session.Host handler): run a Scenario remotely with a one-line
// change — Connect(url, key) instead of a local testbed.
type Remote struct {
	base string
	key  string
	hc   *http.Client
	// Poll spaces Run's job-state polls. Default 1s.
	Poll time.Duration
}

// Connect returns a client for the hosting plane at url, submitting as
// the tenant owning key.
func Connect(url, key string) *Remote {
	return &Remote{
		base: strings.TrimRight(url, "/"),
		key:  key,
		hc:   &http.Client{Timeout: 30 * time.Second},
		Poll: time.Second,
	}
}

// do issues one authenticated request and decodes the response into
// out. Non-2xx responses come back as typed *HostError.
func (r *Remote) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+r.key)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return hosting.DecodeError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("splay: remote response: %w", err)
	}
	return nil
}

// Submit serializes the scenario and submits it.
func (r *Remote) Submit(ctx context.Context, sc Scenario) (HostJob, error) {
	data, err := sc.Marshal()
	if err != nil {
		return HostJob{}, err
	}
	return r.SubmitRaw(ctx, data)
}

// SubmitRaw submits an already-serialized scenario.
func (r *Remote) SubmitRaw(ctx context.Context, scenario []byte) (HostJob, error) {
	var view HostJob
	err := r.do(ctx, http.MethodPost, "/jobs", scenario, &view)
	return view, err
}

// Job returns one job's state.
func (r *Remote) Job(ctx context.Context, id string) (HostJob, error) {
	var view HostJob
	err := r.do(ctx, http.MethodGet, "/jobs/"+id, nil, &view)
	return view, err
}

// Jobs lists the tenant's jobs.
func (r *Remote) Jobs(ctx context.Context) ([]HostJob, error) {
	var views []HostJob
	err := r.do(ctx, http.MethodGet, "/jobs", nil, &views)
	return views, err
}

// Result returns a finished job's result.
func (r *Remote) Result(ctx context.Context, id string) (HostResult, error) {
	var res HostResult
	err := r.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, &res)
	return res, err
}

// Kill dequeues or stops a job.
func (r *Remote) Kill(ctx context.Context, id string) error {
	return r.do(ctx, http.MethodDelete, "/jobs/"+id, nil, nil)
}

// Usage reports the tenant's accounting.
func (r *Remote) Usage(ctx context.Context, tenant string) (HostUsage, error) {
	var u HostUsage
	err := r.do(ctx, http.MethodGet, "/tenants/"+tenant+"/usage", nil, &u)
	return u, err
}

// Run submits a scenario and polls until the job finishes, returning
// its result — the remote analogue of Scenario.Run.
func (r *Remote) Run(ctx context.Context, sc Scenario) (HostResult, error) {
	view, err := r.Submit(ctx, sc)
	if err != nil {
		return HostResult{}, err
	}
	poll := r.Poll
	if poll <= 0 {
		poll = time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return HostResult{}, ctx.Err()
		case <-time.After(poll):
		}
		job, err := r.Job(ctx, view.ID)
		if err != nil {
			return HostResult{}, err
		}
		if job.State.Terminal() {
			return r.Result(ctx, view.ID)
		}
	}
}
