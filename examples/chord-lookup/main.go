// chord-lookup deploys a converged Chord ring on a simulated ModelNet
// cluster (the §5.2 setting) and reports route lengths and delays — a
// miniature of Fig. 6.
//
//	go run ./examples/chord-lookup
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/topology"
	"github.com/splaykit/splay/internal/transport"
)

func main() {
	const n = 200
	k := sim.NewKernel()
	model := topology.NewModelNet(topology.DefaultModelNet(n))
	nw := simnet.New(k, model, n, 42)
	rt := core.NewSimRuntime(k, 42)
	rng := rand.New(rand.NewSource(42))

	var nodes []*chord.Node
	for i := 0; i < n; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 8000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr, Position: i + 1}, nil)
		cfg := chord.DefaultConfig()
		id := uint64(rng.Intn(1 << 24))
		cfg.ID = &id
		node, err := chord.New(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	k.Go(func() {
		for _, node := range nodes {
			if err := node.Start(); err != nil {
				log.Fatal(err)
			}
		}
	})
	k.Run()
	if err := chord.BuildRing(nodes, chord.BuildOptions{}); err != nil {
		log.Fatal(err)
	}

	hist := &stats.IntHistogram{}
	var delays stats.Durations
	k.Go(func() {
		for i := 0; i < 2000; i++ {
			src := nodes[rng.Intn(len(nodes))]
			res, err := src.Lookup(uint64(rng.Intn(1 << 24)))
			if err != nil {
				continue
			}
			hist.Add(res.Hops)
			delays = append(delays, res.RTT)
		}
	})
	k.Run()

	fmt.Printf("Chord on simulated ModelNet: %d nodes, %d lookups\n", n, hist.Total())
	fmt.Printf("mean route length: %.2f hops (½·log2 N = %.2f)\n", hist.Mean(), 3.82)
	for h, p := range hist.PDF() {
		if p > 0 {
			fmt.Printf("  %d hops: %5.1f%%\n", h, p*100)
		}
	}
	for _, p := range []float64{50, 90, 99} {
		fmt.Printf("p%.0f lookup delay: %s\n", p, delays.Percentile(p).Round(time.Millisecond))
	}
}
