// chord-lookup deploys a Chord ring onto a simulated ModelNet cluster
// through the scenario SDK (the §5.2 setting) and reports route lengths
// and delays — a miniature of Fig. 6. The controller places the
// instances; the ring is then converged statically and driven from a
// measurement task.
//
//	go run ./examples/chord-lookup
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/protocols/chord"
	"github.com/splaykit/splay/internal/stats"
)

func main() {
	const n = 200
	rng := rand.New(rand.NewSource(42))
	var nodes []*chord.Node
	sc := splay.Scenario{
		Seed:    42,
		Testbed: splay.ModelNet(n),
		Apps: []splay.AppSpec{{
			Name:  "chord-lookup",
			Nodes: n,
			App: splay.AppFunc(func(env *splay.Env) error {
				cfg := chord.DefaultConfig()
				id := uint64(rng.Intn(1 << 24))
				cfg.ID = &id
				node, err := chord.New(env.AppContext(), cfg)
				if err != nil {
					return err
				}
				if err := node.Start(); err != nil {
					return err
				}
				nodes = append(nodes, node)
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Stop()
	if _, err := sess.Deploy(sc.Apps[0]).Wait(); err != nil {
		log.Fatal(err)
	}
	if err := chord.BuildRing(nodes, chord.BuildOptions{}); err != nil {
		log.Fatal(err)
	}

	hist := &stats.IntHistogram{}
	var delays stats.Durations
	done := false
	sess.Go(func() {
		for i := 0; i < 2000; i++ {
			src := nodes[rng.Intn(len(nodes))]
			res, err := src.Lookup(uint64(rng.Intn(1 << 24)))
			if err != nil {
				continue
			}
			hist.Add(res.Hops)
			delays = append(delays, res.RTT)
		}
		done = true
	})
	for !done {
		sess.RunFor(time.Minute)
	}

	fmt.Printf("Chord on simulated ModelNet: %d nodes, %d lookups\n", n, hist.Total())
	fmt.Printf("mean route length: %.2f hops (½·log2 N = %.2f)\n", hist.Mean(), 3.82)
	for h, p := range hist.PDF() {
		if p > 0 {
			fmt.Printf("  %d hops: %5.1f%%\n", h, p*100)
		}
	}
	for _, p := range []float64{50, 90, 99} {
		fmt.Printf("p%.0f lookup delay: %s\n", p, delays.Percentile(p).Round(time.Millisecond))
	}
}
