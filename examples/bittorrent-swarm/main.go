// bittorrent-swarm distributes a file through a simulated BitTorrent
// swarm deployed as one scenario — the paper's motivating short-lifetime
// deployment ("distributing a large file using BitTorrent", §1). Roles
// come from the deployment itself: position 1 runs the tracker (the
// rendez-vous node every instance finds in job.nodes), position 2 the
// initial seed, everyone else leeches.
//
//	go run ./examples/bittorrent-swarm
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/protocols/bittorrent"
)

func main() {
	const leechers = 15
	torrent := bittorrent.Torrent{Name: "ubuntu.iso", Size: 8 << 20, PieceSize: 128 << 10}

	var seed *bittorrent.Peer
	var peers []*bittorrent.Peer
	sc := splay.Scenario{
		Seed:    7,
		Testbed: splay.Uniform(leechers+2, 40*time.Millisecond, 1<<20),
		Apps: []splay.AppSpec{{
			Name:  "swarm",
			Nodes: leechers + 2,
			App: splay.AppFunc(func(env *splay.Env) error {
				job := env.Job()
				if job.Position == 1 {
					return bittorrent.NewTracker(env.AppContext()).Start()
				}
				p := bittorrent.NewPeer(env.AppContext(), torrent, job.Nodes[0],
					job.Position == 2, bittorrent.DefaultConfig())
				if err := p.Start(); err != nil {
					return err
				}
				if job.Position == 2 {
					seed = p
				} else {
					peers = append(peers, p)
				}
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Stop()
	if _, err := sess.Deploy(sc.Apps[0]).Wait(); err != nil {
		log.Fatal(err)
	}
	start := sess.Now()
	sess.RunFor(30 * time.Minute)

	fmt.Printf("swarm: 1 seed + %d leechers, %d MB file, 1 MB/s links\n",
		leechers, torrent.Size>>20)
	var times []time.Duration
	for _, p := range peers {
		if p.CompletedAt.IsZero() {
			fmt.Println("  a peer did not finish!")
			continue
		}
		times = append(times, p.CompletedAt.Sub(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for i, t := range times {
		fmt.Printf("  completion %2d: %8s\n", i+1, t.Round(time.Second))
	}
	up := seed.Uploaded
	var peerUp int
	for _, p := range peers {
		peerUp += p.Uploaded
	}
	fmt.Printf("seed served %d MB, leechers exchanged %d MB among themselves\n",
		up>>20, peerUp>>20)
}
