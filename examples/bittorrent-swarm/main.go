// bittorrent-swarm distributes a file through a simulated BitTorrent
// swarm — the paper's motivating short-lifetime deployment ("distributing
// a large file using BitTorrent", §1) — and prints completion times.
//
//	go run ./examples/bittorrent-swarm
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/bittorrent"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func main() {
	const leechers = 15
	torrent := bittorrent.Torrent{Name: "ubuntu.iso", Size: 8 << 20, PieceSize: 128 << 10}

	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 40 * time.Millisecond, Bps: 1 << 20}, leechers+2, 7)
	rt := core.NewSimRuntime(k, 7)
	mk := func(i int) *core.AppContext {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 6881}
		return core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
	}
	tracker := bittorrent.NewTracker(mk(0))
	trackerAddr := transport.Addr{Host: "n0", Port: 6881}
	seed := bittorrent.NewPeer(mk(1), torrent, trackerAddr, true, bittorrent.DefaultConfig())
	var peers []*bittorrent.Peer
	for i := 0; i < leechers; i++ {
		peers = append(peers, bittorrent.NewPeer(mk(i+2), torrent, trackerAddr, false, bittorrent.DefaultConfig()))
	}
	k.Go(func() {
		if err := tracker.Start(); err != nil {
			log.Fatal(err)
		}
		if err := seed.Start(); err != nil {
			log.Fatal(err)
		}
		for _, p := range peers {
			if err := p.Start(); err != nil {
				log.Fatal(err)
			}
		}
	})
	k.RunFor(30 * time.Minute)

	fmt.Printf("swarm: 1 seed + %d leechers, %d MB file, 1 MB/s links\n",
		leechers, torrent.Size>>20)
	var times []time.Duration
	for _, p := range peers {
		if p.CompletedAt.IsZero() {
			fmt.Println("  a peer did not finish!")
			continue
		}
		times = append(times, p.CompletedAt.Sub(sim.Epoch))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for i, t := range times {
		fmt.Printf("  completion %2d: %8s\n", i+1, t.Round(time.Second))
	}
	up := seed.Uploaded
	var peerUp int
	for _, p := range peers {
		peerUp += p.Uploaded
	}
	fmt.Printf("seed served %d MB, leechers exchanged %d MB among themselves\n",
		up>>20, peerUp>>20)
}
