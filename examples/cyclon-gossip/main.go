// Cyclon gossip: run the scenario.yaml document through the SDK.
//
//	go run ./examples/cyclon-gossip
package main

import (
	"context"
	"fmt"
	"log"

	splay "github.com/splaykit/splay"
)

func main() {
	sc, err := splay.LoadScenarioFile("examples/cyclon-gossip/scenario.yaml")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shuffles=%d view-sum=%d streams=%d\n",
		res.Metrics.Counter("cyclon.shuffles"),
		res.Metrics.GaugeSum("cyclon.view"),
		res.Metrics.Nodes())
}
