// Quickstart: the whole SPLAY chain in one process on real sockets — a
// controller, five daemons, and a Chord job deployed through the
// REGISTER/LIST/START protocol, exactly as `splayctl` + `splayd` +
// `splay run -app chord` would do across machines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/splaykit/splay/internal/apps"
	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/logging"
	"github.com/splaykit/splay/internal/transport"
)

func main() {
	const daemons = 5
	rt := core.NewLiveRuntime(time.Now().UnixNano())

	// Controller on localhost.
	ctlCfg := controller.DefaultConfig()
	ctlCfg.Port = 15555
	ctl := controller.New(rt, livenet.NewNode("127.0.0.1"), ctlCfg)
	if err := ctl.Start(); err != nil {
		log.Fatalf("controller: %v", err)
	}
	fmt.Println("controller listening on 127.0.0.1:15555")

	// Five daemons, each with its own port range so they coexist on one
	// machine.
	lg := logging.New(&logging.WriterSink{W: os.Stdout}, "local", "quickstart", nil)
	for i := 0; i < daemons; i++ {
		cfg := daemon.DefaultConfig("127.0.0.1")
		cfg.Name = "127.0.0.1" // instances are reachable at localhost
		cfg.PortLow = 21000 + i*100
		cfg.PortHigh = cfg.PortLow + 99
		// Daemon names must be unique per controller session; advertise
		// distinct names resolving to localhost via the job address.
		cfg.Name = fmt.Sprintf("127.0.0.%d", i+1)
		d := daemon.New(rt, livenet.NewNode(cfg.Name), apps.Default(), cfg, lg)
		if err := d.Connect(transport.Addr{Host: "127.0.0.1", Port: 15555}); err != nil {
			log.Fatalf("daemon %d: %v", i, err)
		}
	}
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("daemons connected: %d\n", ctl.Daemons())

	// Deploy a 4-node Chord ring with one lookup per second per node.
	job, err := ctl.Submit(controller.JobSpec{
		App:    "chord",
		Params: []byte(`{"bits":24,"lookups_per_min":60}`),
		Nodes:  4,
	})
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("job %s is %s on %v\n", job.ID, job.State, job.Deployed)

	// Let the ring form (staggered joins) and look up for a while.
	fmt.Println("running for 30s — lookups appear in the instance logs…")
	time.Sleep(30 * time.Second)

	if err := ctl.StopJob(job.ID); err != nil {
		log.Fatalf("stop: %v", err)
	}
	fmt.Println("job stopped; quickstart complete")
}
