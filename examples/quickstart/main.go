// Quickstart: the whole SPLAY chain in one process on real sockets — a
// controller, five daemons, and a Chord job deployed through the
// REGISTER/LIST/START protocol — declared as one splay.Scenario. The
// controller binds an ephemeral port, daemon readiness is polled (not
// slept for), and application ports are probed before they are granted.
//
//	go run ./examples/quickstart [duration]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	splay "github.com/splaykit/splay"
)

func main() {
	duration := 30 * time.Second
	if len(os.Args) > 1 {
		d, err := time.ParseDuration(os.Args[1])
		if err != nil {
			log.Fatalf("quickstart: bad duration %q: %v", os.Args[1], err)
		}
		duration = d
	}
	fmt.Println("quickstart: controller + 5 daemons on loopback; lookups appear in the instance logs…")
	res, err := splay.Scenario{
		Testbed:  splay.Live(5),
		Apps:     []splay.AppSpec{{Name: "chord", Nodes: 4, Params: []byte(`{"bits":24,"lookups_per_min":60}`)}},
		Collect:  splay.Collect{Logs: os.Stdout},
		Duration: duration,
	}.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s ran on %v; quickstart complete\n", res.Jobs[0].ID, res.Jobs[0].Deployed)
}
