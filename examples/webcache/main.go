// webcache runs the §5.7 cooperative web cache on a simulated cluster
// under a Zipf request stream and prints the evolving hit ratio and
// delays — a miniature of Fig. 14.
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/protocols/webcache"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/transport"
	"github.com/splaykit/splay/internal/workload"
)

func main() {
	const nodes = 32
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 10 * time.Millisecond, Bps: 12.5e6}, nodes, 3)
	rt := core.NewSimRuntime(k, 3)

	var pnodes []*pastry.Node
	var caches []*webcache.Cache
	for i := 0; i < nodes; i++ {
		addr := transport.Addr{Host: simnet.HostName(i), Port: 9000}
		ctx := core.NewAppContext(rt, nw.Node(i), core.JobInfo{Me: addr}, nil)
		p := pastry.New(ctx, pastry.DefaultConfig())
		pnodes = append(pnodes, p)
		caches = append(caches, webcache.New(ctx, p, webcache.DefaultConfig()))
	}
	k.Go(func() {
		for i := range pnodes {
			if err := pnodes[i].Start(); err != nil {
				log.Fatal(err)
			}
			if err := caches[i].Start(); err != nil {
				log.Fatal(err)
			}
		}
	})
	k.Run()
	if err := pastry.BuildNetwork(pnodes, pastry.BuildOptions{Seed: 3}); err != nil {
		log.Fatal(err)
	}

	gen, err := workload.NewWebRequests(workload.WebConfig{
		URLs: 5000, ZipfS: 1.22, RatePerSec: 50, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	const window = 5 * time.Minute
	type bucket struct {
		hits, total int
		delays      stats.Durations
	}
	buckets := map[int]*bucket{}
	k.Go(func() {
		prev := time.Duration(0)
		for i := 0; ; i++ {
			at, url := gen.Next()
			if at > 30*time.Minute {
				return
			}
			k.Sleep(at - prev)
			prev = at
			res, err := caches[i%nodes].Get(url)
			if err != nil {
				continue
			}
			b := buckets[int(at/window)]
			if b == nil {
				b = &bucket{}
				buckets[int(at/window)] = b
			}
			b.total++
			if res.Hit {
				b.hits++
			}
			b.delays = append(b.delays, res.Delay)
		}
	})
	k.RunFor(31 * time.Minute)

	fmt.Printf("cooperative web cache: %d nodes, LRU(100), TTL 120s, 50 req/s\n", nodes)
	fmt.Printf("%-10s %8s %10s %10s\n", "window", "hit%", "p50", "p95")
	for i := 0; i < 6; i++ {
		b := buckets[i]
		if b == nil || b.total == 0 {
			continue
		}
		fmt.Printf("%-10s %7.1f%% %10s %10s\n",
			time.Duration(i)*window,
			float64(b.hits)/float64(b.total)*100,
			b.delays.Percentile(50).Round(time.Millisecond),
			b.delays.Percentile(95).Round(time.Millisecond))
	}
}
