// webcache deploys the §5.7 cooperative web cache onto a simulated
// cluster through the scenario SDK, drives it with a Zipf request
// stream, and prints the evolving hit ratio and delays — a miniature of
// Fig. 14.
//
//	go run ./examples/webcache
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/protocols/webcache"
	"github.com/splaykit/splay/internal/stats"
	"github.com/splaykit/splay/internal/workload"
)

func main() {
	const nodes = 32
	var pnodes []*pastry.Node
	var caches []*webcache.Cache
	sc := splay.Scenario{
		Seed:    3,
		Testbed: splay.Uniform(nodes, 10*time.Millisecond, 12.5e6),
		Apps: []splay.AppSpec{{
			Name:  "webcache",
			Nodes: nodes,
			App: splay.AppFunc(func(env *splay.Env) error {
				p := pastry.New(env.AppContext(), pastry.DefaultConfig())
				c := webcache.New(env.AppContext(), p, webcache.DefaultConfig())
				if err := p.Start(); err != nil {
					return err
				}
				if err := c.Start(); err != nil {
					return err
				}
				pnodes, caches = append(pnodes, p), append(caches, c)
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Stop()
	if _, err := sess.Deploy(sc.Apps[0]).Wait(); err != nil {
		log.Fatal(err)
	}
	if err := pastry.BuildNetwork(pnodes, pastry.BuildOptions{Seed: 3}); err != nil {
		log.Fatal(err)
	}

	gen, err := workload.NewWebRequests(workload.WebConfig{
		URLs: 5000, ZipfS: 1.22, RatePerSec: 50, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	const window = 5 * time.Minute
	type bucket struct {
		hits, total int
		delays      stats.Durations
	}
	buckets := map[int]*bucket{}
	sess.Go(func() {
		prev := time.Duration(0)
		for i := 0; ; i++ {
			at, url := gen.Next()
			if at > 30*time.Minute {
				return
			}
			sess.Sleep(at - prev)
			prev = at
			res, err := caches[i%nodes].Get(url)
			if err != nil {
				continue
			}
			b := buckets[int(at/window)]
			if b == nil {
				b = &bucket{}
				buckets[int(at/window)] = b
			}
			b.total++
			if res.Hit {
				b.hits++
			}
			b.delays = append(b.delays, res.Delay)
		}
	})
	sess.RunFor(31 * time.Minute)

	fmt.Printf("cooperative web cache: %d nodes, LRU(100), TTL 120s, 50 req/s\n", nodes)
	fmt.Printf("%-10s %8s %10s %10s\n", "window", "hit%", "p50", "p95")
	for i := 0; i < 6; i++ {
		b := buckets[i]
		if b == nil || b.total == 0 {
			continue
		}
		fmt.Printf("%-10s %7.1f%% %10s %10s\n",
			time.Duration(i)*window,
			float64(b.hits)/float64(b.total)*100,
			b.delays.Percentile(50).Round(time.Millisecond),
			b.delays.Percentile(95).Round(time.Millisecond))
	}
}
