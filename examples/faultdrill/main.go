// Faultdrill: run a scenario document through the SDK — the no-Go
// experiment authored in scenario.yaml, loaded and executed verbatim.
//
//	go run ./examples/faultdrill
package main

import (
	"context"
	"fmt"
	"log"

	splay "github.com/splaykit/splay"
)

func main() {
	sc, err := splay.LoadScenarioFile("examples/faultdrill/scenario.yaml")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faultdrill: %d daemons, partition at +60s, closed-loop heal…\n", 60)
	res, err := sc.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookups=%d failed=%d streams=%d\n",
		res.Metrics.Counter("chord.lookups"),
		res.Metrics.Counter("chord.failed_lookups"),
		res.Metrics.Nodes())
}
