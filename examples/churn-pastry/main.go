// churn-pastry runs Pastry under the paper's Fig. 4 synthetic churn
// script, declared as a Scenario churn spec: each trace slot that joins
// instantiates the application, each leave kills it and takes the host
// down. Lookup success is sampled through the phases — the §5.5
// churn-management workflow in miniature.
//
//	go run ./examples/churn-pastry
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/protocols/pastry"
)

func main() {
	// Scale the Fig. 4 script up: 10× the population for a livelier run.
	churn, err := splay.ChurnScript(`at 30s join 100
from 5m to 10m inc 100
from 10m to 15m const churn 50%
at 15m leave 50%
from 15m to 20m inc 100 churn 150%
at 20m stop`, 99)
	if err != nil {
		log.Fatal(err)
	}

	cfg := pastry.DefaultConfig()
	cfg.RPCTimeout = 5 * time.Second
	cfg.MaintainEvery = 10 * time.Second
	rng := rand.New(rand.NewSource(99))
	nodes := make([]*pastry.Node, churn.Slots())
	var alive []int

	sc := splay.Scenario{
		Seed:    99,
		Testbed: splay.Uniform(0, 20*time.Millisecond, 0),
		Churn:   churn,
		Apps: []splay.AppSpec{{
			Name: "churn-pastry",
			App: splay.AppFunc(func(env *splay.Env) error {
				slot := env.Job().Position - 1
				c := cfg
				id := pastry.ID(rng.Uint64())
				c.ID = &id
				n := pastry.New(env.AppContext(), c)
				nodes[slot] = n
				if err := n.Start(); err != nil {
					return err
				}
				if len(alive) > 0 {
					seed := nodes[alive[rng.Intn(len(alive))]]
					n.Join(seed.Self().Addr) //nolint:errcheck // churned-out seeds are expected
				}
				n.StartMaintenance()
				alive = append(alive, slot)
				env.OnKill(func() {
					for i, s := range alive {
						if s == slot {
							alive = append(alive[:i], alive[i+1:]...)
							break
						}
					}
				})
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Stop()

	// Sample lookups every 30 seconds.
	fmt.Printf("%-8s %8s %8s %8s\n", "minute", "alive", "ok", "fail")
	for m := 0; m < 21; m++ {
		m := m
		sess.GoAfter(time.Duration(m)*time.Minute+30*time.Second, func() {
			ok, fail := 0, 0
			for i := 0; i < 20 && len(alive) > 1; i++ {
				src := nodes[alive[rng.Intn(len(alive))]]
				if _, err := src.Route(pastry.ID(rng.Uint64())); err == nil {
					ok++
				} else {
					fail++
				}
			}
			fmt.Printf("%-8d %8d %8d %8d\n", m, len(alive), ok, fail)
		})
	}
	sess.RunFor(22 * time.Minute)
	fmt.Println("churn replay complete")
}
