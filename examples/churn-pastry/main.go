// churn-pastry runs Pastry under the paper's Fig. 4 synthetic churn
// script and reports lookup success through the phases — the §5.5
// churn-management workflow in miniature.
//
//	go run ./examples/churn-pastry
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/churn"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/protocols/pastry"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

func main() {
	// Scale the Fig. 4 script up: 10× the population for a livelier run.
	script, err := churn.ParseScript(`at 30s join 100
from 5m to 10m inc 100
from 10m to 15m const churn 50%
at 15m leave 50%
from 15m to 20m inc 100 churn 150%
at 20m stop`)
	if err != nil {
		log.Fatal(err)
	}
	trace := churn.FromScript(script, 99)
	slots := trace.MaxSlot() + 1

	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: 20 * time.Millisecond}, slots, 99)
	rt := core.NewSimRuntime(k, 99)
	rng := rand.New(rand.NewSource(99))

	nodes := make([]*pastry.Node, slots)
	ctxs := make([]*core.AppContext, slots)
	var alive []int

	cfg := pastry.DefaultConfig()
	cfg.RPCTimeout = 5 * time.Second
	cfg.MaintainEvery = 10 * time.Second

	ctl := churn.NodeControlFuncs{
		Start: func(slot int) {
			nw.Host(slot).SetDown(false)
			addr := transport.Addr{Host: simnet.HostName(slot), Port: 9000}
			ctx := core.NewAppContext(rt, nw.Node(slot), core.JobInfo{Me: addr}, nil)
			c := cfg
			id := pastry.ID(rng.Uint64())
			c.ID = &id
			n := pastry.New(ctx, c)
			nodes[slot], ctxs[slot] = n, ctx
			if err := n.Start(); err != nil {
				return
			}
			if len(alive) > 0 {
				seed := nodes[alive[rng.Intn(len(alive))]]
				n.Join(seed.Self().Addr) //nolint:errcheck
			}
			n.StartMaintenance()
			alive = append(alive, slot)
		},
		Stop: func(slot int) {
			if ctxs[slot] != nil {
				ctxs[slot].Kill()
			}
			nw.Host(slot).SetDown(true)
			for i, s := range alive {
				if s == slot {
					alive = append(alive[:i], alive[i+1:]...)
					break
				}
			}
		},
	}
	ex := churn.NewExecutor(rt, trace, ctl)
	k.Go(ex.Run)

	// Sample lookups every 30 seconds.
	fmt.Printf("%-8s %8s %8s %8s\n", "minute", "alive", "ok", "fail")
	for m := 0; m < 21; m++ {
		m := m
		k.GoAfter(time.Duration(m)*time.Minute+30*time.Second, func() {
			ok, fail := 0, 0
			for i := 0; i < 20 && len(alive) > 1; i++ {
				src := nodes[alive[rng.Intn(len(alive))]]
				if _, err := src.Route(pastry.ID(rng.Uint64())); err == nil {
					ok++
				} else {
					fail++
				}
			}
			fmt.Printf("%-8d %8d %8d %8d\n", m, len(alive), ok, fail)
		})
	}
	k.RunFor(22 * time.Minute)
	fmt.Println("churn replay complete")
}
