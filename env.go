package splay

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/faults"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/rpc"
	"github.com/splaykit/splay/internal/sandbox"
	"github.com/splaykit/splay/internal/transport"
)

// Re-exported types: the SDK's application-facing vocabulary. These are
// aliases, so values flow freely between the SDK surface and the engine
// underneath; external modules can name them through this package without
// importing internal paths.
type (
	// Addr is a host:port network address.
	Addr = transport.Addr
	// Conn is a stream connection.
	Conn = transport.Conn
	// Listener accepts stream connections.
	Listener = transport.Listener
	// PacketConn is a datagram socket.
	PacketConn = transport.PacketConn
	// JobInfo carries deployment information (job.me/nodes/position).
	JobInfo = core.JobInfo
	// Logger is the application logging surface.
	Logger = core.Logger
	// Lock is the cooperative lock library.
	Lock = core.Lock
	// FS is the sandboxed virtual filesystem (the paper's sb_fs).
	FS = sandbox.FS
	// File is an open sandboxed file handle.
	File = sandbox.File
	// FSLimits restricts a sandboxed filesystem.
	FSLimits = sandbox.FSLimits
	// NetLimits restricts a sandboxed network stack (the paper's sb_socket).
	NetLimits = sandbox.NetLimits
	// Counter is a monotone metric instrument.
	Counter = metrics.Counter
	// Gauge is an up/down metric instrument.
	Gauge = metrics.Gauge
	// Histogram is a fixed-bucket distribution instrument.
	Histogram = metrics.Histogram
	// MetricsRegistry holds an instance's metric instruments.
	MetricsRegistry = metrics.Registry
	// RPCServer serves JSON-RPC style calls between instances.
	RPCServer = rpc.Server
	// RPCClient issues calls to RPCServers.
	RPCClient = rpc.Client
	// RPCArgs is the argument view an RPC handler receives.
	RPCArgs = rpc.Args
	// RPCResult is a call's decoded return payload.
	RPCResult = rpc.Result
	// RPCHandler handles one registered RPC method.
	RPCHandler = rpc.Handler
)

// Histogram bucket layouts (see Env.Metrics).
const (
	HistLinear = metrics.KindHistLinear
	HistPow2   = metrics.KindHistPow2
)

// Re-exported sandbox and transport errors, so applications can test for
// them with errors.Is without importing internal packages.
var (
	ErrQuota        = sandbox.ErrQuota
	ErrTooManyFiles = sandbox.ErrTooManyFiles
	ErrLimit        = transport.ErrLimit
	ErrBlacklisted  = transport.ErrBlacklisted
	ErrTimeout      = error(transport.ErrTimeout)
	ErrRefused      = transport.ErrRefused
)

// Cap is one capability an Env may hold. The daemon (and the Scenario
// deploying through it) grants capabilities per application; everything
// not granted fails with a CapabilityError instead of silently working,
// mirroring the paper's rule that restrictions are set outside the
// application and may only ever be tightened.
type Cap uint32

// Capabilities.
const (
	// CapNet grants the sandboxed socket layer: Dial, Listen,
	// ListenPacket, and the RPC helpers.
	CapNet Cap = 1 << iota
	// CapFS grants the sandboxed virtual filesystem.
	CapFS

	// AllCaps is the default grant.
	AllCaps Cap = CapNet | CapFS
)

func (c Cap) String() string {
	switch c {
	case CapNet:
		return "net"
	case CapFS:
		return "fs"
	}
	return fmt.Sprintf("cap(%d)", uint32(c))
}

// CapabilityError reports an operation denied because the Env does not
// hold the required capability.
type CapabilityError struct{ Cap Cap }

func (e *CapabilityError) Error() string {
	return fmt.Sprintf("splay: capability %q denied", e.Cap)
}

// ErrNoCollector is returned by Env.StartReporting when the scenario the
// instance runs under collects no metrics.
var ErrNoCollector = errors.New("splay: scenario collects no metrics")

// App is a deployable SPLAY application written against the SDK: Run
// executes the application's main logic inside a capability-scoped Env
// and returns when the application terminates or is killed. The same
// implementation runs unmodified under the deterministic simulation
// runtime and live on real networks.
type App interface {
	Run(env *Env) error
}

// AppFunc adapts a function to App.
type AppFunc func(env *Env) error

// Run implements App.
func (f AppFunc) Run(env *Env) error { return f(env) }

// Factory builds an application from JSON job parameters (the arguments a
// SPLAY job descriptor passes to the deployed script). Factories must
// tolerate nil params: daemons probe them with nil at registration time
// to validate the application before reserving resources.
type Factory func(params []byte) (App, error)

// collectTarget is the metric plane an Env reports into, wired by the
// Scenario that deployed the instance.
type collectTarget struct {
	addr  transport.Addr
	key   string
	every time.Duration
}

// Env is the capability-scoped execution environment of one application
// instance: cooperative tasks and timers, job information, logging,
// metric instruments, and — capability-gated — the sandboxed socket layer
// and virtual filesystem. It replaces direct coupling to the engine's
// AppContext; the engine context remains reachable through AppContext for
// protocol libraries built on it.
type Env struct {
	ctx     *core.AppContext
	caps    Cap
	node    transport.Node // sandbox-wrapped when the spec adds net limits
	fsLim   sandbox.FSLimits
	fs      *sandbox.FS
	reg     *metrics.Registry
	collect *collectTarget
	rules   *faults.RPCRules // fault-plane RPC filter (nil outside fault plans)
}

// EnvConfig tunes NewEnv for hosts that instantiate applications outside
// a Scenario (daemons embed equivalents in their job plumbing).
type EnvConfig struct {
	// Caps is the capability grant; zero means AllCaps.
	Caps Cap
	// Net adds sandbox socket limits on top of whatever the hosting
	// daemon already enforces (limits compose; they never weaken).
	Net NetLimits
	// FS bounds the instance's virtual filesystem.
	FS FSLimits
}

// NewEnv wraps an engine context in a capability-scoped environment.
// Most applications never call this: daemons and Scenario deployments
// build the Env; NewEnv is the bridge for static instantiation (tests,
// hand-built simulations).
func NewEnv(ctx *core.AppContext, cfg EnvConfig) *Env {
	return newEnv(ctx, cfg, nil, nil)
}

func newEnv(ctx *core.AppContext, cfg EnvConfig, collect *collectTarget, rules *faults.RPCRules) *Env {
	caps := cfg.Caps
	if caps == 0 {
		caps = AllCaps
	}
	node := transport.Node(nil)
	if caps&CapNet != 0 {
		node = ctx.Node()
		if cfg.Net.MaxSockets > 0 || cfg.Net.MaxTxBytes > 0 || cfg.Net.MaxRxBytes > 0 || len(cfg.Net.Blacklist) > 0 {
			sb := sandbox.Wrap(node, cfg.Net)
			ctx.Track(closerFunc(func() error { sb.CloseAll(); return nil }))
			node = sb
		}
	}
	return &Env{ctx: ctx, caps: caps, node: node, fsLim: cfg.FS, collect: collect, rules: rules}
}

// closerFunc adapts a function to io.Closer for AppContext.Track.
type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// AppContext returns the engine context underneath the Env: the bridge
// for protocol libraries (chord, pastry, …) that are written against the
// engine. It is always available; the capability model gates the
// resources the Env itself hands out.
func (e *Env) AppContext() *core.AppContext { return e.ctx }

// Job describes this instance's deployment: its own address (job.me),
// the controller-chosen bootstrap list (job.nodes) and its 1-based rank
// in the deployment sequence (job.position).
func (e *Env) Job() JobInfo { return e.ctx.Job }

// Now returns the current (virtual or real) time.
func (e *Env) Now() time.Time { return e.ctx.Now() }

// Sleep parks the calling task for d.
func (e *Env) Sleep(d time.Duration) { e.ctx.Sleep(d) }

// Rand returns the runtime's random source (deterministic in simulation).
func (e *Env) Rand() *rand.Rand { return e.ctx.Rand() }

// Go starts fn as a task of this instance (the paper's events.thread).
func (e *Env) Go(fn func()) { e.ctx.Go(fn) }

// After schedules fn once after d; it is canceled automatically when the
// instance is killed.
func (e *Env) After(d time.Duration, fn func()) (cancel func()) { return e.ctx.After(d, fn) }

// Periodic runs fn every interval until stopped or the instance is
// killed (the paper's events.periodic).
func (e *Env) Periodic(interval time.Duration, fn func()) (stop func()) {
	return e.ctx.Periodic(interval, fn)
}

// NewLock returns a cooperative lock bound to the instance's runtime.
func (e *Env) NewLock() *Lock { return e.ctx.NewLock() }

// Killed reports whether the instance has been stopped.
func (e *Env) Killed() bool { return e.ctx.Killed() }

// OnKill registers fn to run when the instance is killed (periodics
// canceled, sockets closed). Applications use it to deregister from
// shared state under churn.
func (e *Env) OnKill(fn func()) {
	e.ctx.Track(closerFunc(func() error { fn(); return nil }))
}

// RunUntilKilled parks the main task while background tasks work: the
// idiomatic tail of a long-running application's Run.
func (e *Env) RunUntilKilled() {
	for !e.ctx.Killed() {
		e.ctx.Sleep(5 * time.Second)
	}
}

// Log returns the instance's logger (never nil).
func (e *Env) Log() Logger { return e.ctx.Log }

// Logf logs one line through the instance's logger.
func (e *Env) Logf(format string, args ...any) { e.ctx.Log.Printf(format, args...) }

// Dial opens a stream to a peer through the sandboxed socket layer.
func (e *Env) Dial(to Addr, timeout time.Duration) (Conn, error) {
	if e.caps&CapNet == 0 {
		return nil, &CapabilityError{Cap: CapNet}
	}
	c, err := e.node.Dial(to, timeout)
	if err != nil {
		return nil, err
	}
	e.ctx.Track(c)
	return c, nil
}

// Listen binds a stream listener; port 0 asks for an ephemeral port.
func (e *Env) Listen(port int) (Listener, error) {
	if e.caps&CapNet == 0 {
		return nil, &CapabilityError{Cap: CapNet}
	}
	l, err := e.node.Listen(port)
	if err != nil {
		return nil, err
	}
	e.ctx.Track(l)
	return l, nil
}

// ListenPacket binds a datagram socket.
func (e *Env) ListenPacket(port int) (PacketConn, error) {
	if e.caps&CapNet == 0 {
		return nil, &CapabilityError{Cap: CapNet}
	}
	p, err := e.node.ListenPacket(port)
	if err != nil {
		return nil, err
	}
	e.ctx.Track(p)
	return p, nil
}

// Node exposes the instance's (sandboxed) network stack for libraries
// that manage their own sockets.
func (e *Env) Node() (transport.Node, error) {
	if e.caps&CapNet == 0 {
		return nil, &CapabilityError{Cap: CapNet}
	}
	return e.node, nil
}

// NewRPCServer returns an RPC server bound to this instance.
func (e *Env) NewRPCServer() (*RPCServer, error) {
	if e.caps&CapNet == 0 {
		return nil, &CapabilityError{Cap: CapNet}
	}
	return rpc.NewServer(e.ctx), nil
}

// NewRPCClient returns an RPC client bound to this instance. Under a
// scenario with a non-empty fault plan the client carries the plan's
// message filter (drop/delay by method) and paces redials to dead peers
// with jittered exponential backoff; outside fault plans it is the bare
// zero-overhead client.
func (e *Env) NewRPCClient() (*RPCClient, error) {
	if e.caps&CapNet == 0 {
		return nil, &CapabilityError{Cap: CapNet}
	}
	cl := rpc.NewClient(e.ctx)
	if e.rules != nil {
		cl.Fault = e.rules.Check
		cl.SetRedialBackoff(faults.DefaultBackoff())
	}
	return cl, nil
}

// FS returns the instance's private virtual filesystem, created on first
// use with the spec's limits. Path names are opaque keys in the
// instance's own namespace; the host filesystem is unreachable.
func (e *Env) FS() (*FS, error) {
	if e.caps&CapFS == 0 {
		return nil, &CapabilityError{Cap: CapFS}
	}
	if e.fs == nil {
		e.fs = sandbox.NewFS(e.fsLim)
	}
	return e.fs, nil
}

// Metrics returns the instance's metric registry, created on first use.
// Instruments are pure memory operations; they reach an aggregator only
// through StartReporting (or a reporter the application wires itself).
func (e *Env) Metrics() *MetricsRegistry {
	if e.reg == nil {
		e.reg = metrics.NewRegistry()
	}
	return e.reg
}

// StartReporting streams the instance's metric registry to the
// scenario's aggregator as batched delta reports, one flush per
// collection period, until the instance is killed. It fails with
// ErrNoCollector when the scenario collects no metrics, and requires
// CapNet: the report stream is network traffic like any other, dialed
// through the instance's sandboxed stack and charged against its
// limits.
func (e *Env) StartReporting() error {
	if e.collect == nil {
		return ErrNoCollector
	}
	if e.caps&CapNet == 0 {
		return &CapabilityError{Cap: CapNet}
	}
	rep, err := metrics.DialReporter(e.node, e.collect.addr, e.Metrics(),
		metrics.ReporterConfig{Key: e.collect.key, Node: e.ctx.Job.Me.Host})
	if err != nil {
		return err
	}
	e.ctx.Track(rep)
	if e.rules != nil {
		// Fault-plane scenarios cut and heal the network under the
		// report stream; redial it so telemetry resumes after a heal.
		// (Gated on the fault plan so unfaulted schedules stay
		// byte-identical: an unfaulted stream never fails a flush.)
		e.ctx.Periodic(e.collect.every, func() {
			if rep.Flush() != nil {
				rep.Reconnect() //nolint:errcheck // retried next period
			}
		})
		return nil
	}
	e.ctx.Periodic(e.collect.every, func() { rep.Flush() }) //nolint:errcheck // monitoring is best effort
	return nil
}

var _ io.Closer = closerFunc(nil)
