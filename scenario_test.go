package splay_test

// Scenario tests: the declarative deployment chain on simulated and live
// testbeds, sim↔live parity of the application-visible surface, churn
// wiring, and registration error surfacing.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	splay "github.com/splaykit/splay"
)

// runParity executes one fixed scenario on the given testbed and returns
// what the application observed, one line per instance, sorted.
func runParity(t *testing.T, tb splay.Testbed) []string {
	t.Helper()
	var mu sync.Mutex
	var obs []string
	sc := splay.Scenario{
		Seed:    7,
		Testbed: tb,
		Apps: []splay.AppSpec{{
			Name:  "parity",
			Nodes: 2,
			Env:   splay.EnvConfig{Caps: splay.CapNet}, // fs withheld
			App: splay.AppFunc(func(env *splay.Env) error {
				job := env.Job()
				_, fsErr := env.FS()
				var capErr *splay.CapabilityError
				ln, netErr := env.Listen(0)
				if netErr == nil {
					ln.Close()
				}
				mu.Lock()
				obs = append(obs, fmt.Sprintf("pos=%d nodes=%d port>0=%v fsdenied=%v net=%v",
					job.Position, len(job.Nodes), job.Me.Port > 0,
					errors.As(fsErr, &capErr), netErr == nil))
				mu.Unlock()
				return nil
			}),
		}},
		Duration: time.Second,
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatalf("%T: %v", tb, err)
	}
	// Run stops jobs on the way out: a completed one-shot run reports done.
	if len(res.Jobs) != 1 || res.Jobs[0].State != splay.JobDone {
		t.Fatalf("%T: jobs = %+v", tb, res.Jobs)
	}
	if got := len(res.Jobs[0].Deployed); got != 2 {
		t.Fatalf("%T: deployed %d instances, want 2", tb, got)
	}
	mu.Lock()
	defer mu.Unlock()
	out := append([]string(nil), obs...)
	sort.Strings(out)
	return out
}

// TestScenarioSimLiveParity deploys the same scenario on a simulated and
// a live testbed and checks the application-visible behavior — job info
// shape, granted and denied capabilities — is identical.
func TestScenarioSimLiveParity(t *testing.T) {
	t.Parallel()
	simObs := runParity(t, splay.Uniform(3, time.Millisecond, 0))
	liveObs := runParity(t, splay.Live(3))
	if len(simObs) != len(liveObs) {
		t.Fatalf("sim saw %d instances, live %d", len(simObs), len(liveObs))
	}
	for i := range simObs {
		if simObs[i] != liveObs[i] {
			t.Errorf("parity drift:\n sim  %s\n live %s", simObs[i], liveObs[i])
		}
	}
}

// TestScenarioCollectsMetrics runs a simulated scenario whose app
// reports instruments through Env.StartReporting and checks the
// aggregated result surfaces them.
func TestScenarioCollectsMetrics(t *testing.T) {
	t.Parallel()
	sc := splay.Scenario{
		Testbed: splay.Uniform(4, 2*time.Millisecond, 0),
		Collect: splay.Collect{Metrics: true, ReportEvery: time.Second},
		Apps: []splay.AppSpec{{
			Name:  "ticker",
			Nodes: 3,
			App: splay.AppFunc(func(env *splay.Env) error {
				ticks := env.Metrics().Counter("app.ticks")
				if err := env.StartReporting(); err != nil {
					return err
				}
				env.Periodic(500*time.Millisecond, func() { ticks.Inc() })
				return nil
			}),
		}},
		Duration: 10 * time.Second,
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("no telemetry on a collecting scenario")
	}
	// 3 app streams + the controller's own.
	if got := res.Metrics.Nodes(); got != 4 {
		t.Errorf("reporting nodes = %d, want 4", got)
	}
	if got := res.Metrics.Counter("app.ticks"); got == 0 {
		t.Error("aggregated tick counter is zero")
	}
	if got := res.Metrics.Counter("ctl.deploys"); got != 1 {
		t.Errorf("controller stream deploys = %d, want 1", got)
	}
	if frames, bytes := res.Metrics.Received(); frames == 0 || bytes == 0 {
		t.Errorf("plane carried %d frames / %d bytes", frames, bytes)
	}
}

// TestScenarioWorkerNeutrality is DESIGN.md invariant 9 at the SDK
// surface: Workers is a wall-clock knob, so the same simulated scenario
// must produce an identical Result at any worker count.
func TestScenarioWorkerNeutrality(t *testing.T) {
	t.Parallel()
	type outcome struct {
		ticks, deploys, frames, bytes uint64
	}
	runAt := func(workers int) outcome {
		sc := splay.Scenario{
			Seed:    31,
			Workers: workers,
			Testbed: splay.Uniform(4, 2*time.Millisecond, 0),
			Collect: splay.Collect{Metrics: true, ReportEvery: time.Second},
			Apps: []splay.AppSpec{{
				Name:  "ticker",
				Nodes: 3,
				App: splay.AppFunc(func(env *splay.Env) error {
					ticks := env.Metrics().Counter("app.ticks")
					if err := env.StartReporting(); err != nil {
						return err
					}
					env.Periodic(500*time.Millisecond, func() { ticks.Inc() })
					return nil
				}),
			}},
			Duration: 10 * time.Second,
		}
		res, err := sc.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		frames, bytes := res.Metrics.Received()
		return outcome{
			ticks:   res.Metrics.Counter("app.ticks"),
			deploys: res.Metrics.Counter("ctl.deploys"),
			frames:  frames,
			bytes:   bytes,
		}
	}
	ref := runAt(0)
	for _, w := range []int{1, 4} {
		if got := runAt(w); got != ref {
			t.Errorf("Workers=%d changed the result: %+v, want %+v", w, got, ref)
		}
	}
}

// TestScenarioAutoPartition pins the testbed partitioning contract: a
// plain scenario past the population threshold provisions a sharded
// kernel (P > 1, chosen from the host count alone), and the choice is
// schedule-visible only via P — Workers, including 0 for "one thread
// per partition", never changes a result byte.
func TestScenarioAutoPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("2k-host population")
	}
	t.Parallel()
	type outcome struct {
		parts  int
		state  splay.JobState
		placed string
		now    time.Time
	}
	runAt := func(workers int) outcome {
		sc := splay.Scenario{
			Seed:    13,
			Workers: workers,
			Testbed: splay.Uniform(2047, 10*time.Millisecond, 0),
			Apps: []splay.AppSpec{{
				Name:  "noop",
				Nodes: 8,
				App:   splay.AppFunc(func(env *splay.Env) error { return nil }),
			}},
		}
		sess, err := sc.Start(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		defer sess.Stop()
		job, err := sess.Deploy(sc.Apps[0]).Wait()
		if err != nil {
			t.Fatalf("workers=%d: deploy: %v", workers, err)
		}
		sess.RunFor(30 * time.Second)
		placed := make([]string, 0, len(job.Deployed))
		for _, a := range job.Deployed {
			placed = append(placed, fmt.Sprintf("%v", a))
		}
		return outcome{
			parts:  sess.Partitions(),
			state:  job.State,
			placed: strings.Join(placed, ","),
			now:    sess.Now(),
		}
	}
	ref := runAt(0)
	if ref.parts < 2 {
		t.Fatalf("partitions = %d at 2048 hosts, want > 1", ref.parts)
	}
	if ref.placed == "" {
		t.Fatal("no instances placed")
	}
	for _, w := range []int{1, 4} {
		if got := runAt(w); got != ref {
			t.Errorf("Workers=%d changed the result:\n got  %+v\n want %+v", w, got, ref)
		}
	}
}

// TestScenarioChurn replays a small churn script against an inline app
// and checks starts and kills both happen.
func TestScenarioChurn(t *testing.T) {
	t.Parallel()
	churn, err := splay.ChurnScript("at 1s join 10\nat 30s leave 50%", 3)
	if err != nil {
		t.Fatal(err)
	}
	started, killed := 0, 0
	sc := splay.Scenario{
		Testbed: splay.Uniform(0, time.Millisecond, 0),
		Churn:   churn,
		Apps: []splay.AppSpec{{
			Name: "churned",
			App: splay.AppFunc(func(env *splay.Env) error {
				started++
				env.OnKill(func() { killed++ })
				return nil
			}),
		}},
	}
	sess, err := sc.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Stop()
	sess.RunFor(2 * time.Minute)
	if started != 10 {
		t.Errorf("started %d instances, want 10", started)
	}
	if killed != 5 {
		t.Errorf("killed %d instances, want 5", killed)
	}
	if alive := sess.Daemons(); alive != 5 {
		t.Errorf("alive = %d, want 5", alive)
	}
}

// TestScenarioDuplicateAppName checks a duplicate registration surfaces
// as an error from Start instead of clobbering the first app.
func TestScenarioDuplicateAppName(t *testing.T) {
	t.Parallel()
	app := splay.AppFunc(func(env *splay.Env) error { return nil })
	sc := splay.Scenario{
		Testbed: splay.Uniform(2, time.Millisecond, 0),
		Apps: []splay.AppSpec{
			{Name: "dup", Nodes: 1, App: app},
			{Name: "dup", Nodes: 1, App: app},
		},
	}
	if _, err := sc.Start(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Start with duplicate app names: err = %v, want duplicate registration error", err)
	}
}

// TestScenarioBuiltinApps deploys the built-in chord application by name
// only — the quickstart shape — on a simulated testbed.
func TestScenarioBuiltinApps(t *testing.T) {
	t.Parallel()
	res, err := splay.Scenario{
		Testbed:  splay.Uniform(3, 2*time.Millisecond, 0),
		Apps:     []splay.AppSpec{{Name: "chord", Nodes: 2, Params: []byte(`{"bits":16}`)}},
		Duration: 5 * time.Second,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].State != splay.JobDone {
		t.Fatalf("job state = %s after Run, want done", res.Jobs[0].State)
	}
	if len(res.Jobs[0].Deployed) != 2 {
		t.Fatalf("deployed %v, want 2 instances", res.Jobs[0].Deployed)
	}
	bad := splay.Scenario{
		Testbed: splay.Uniform(2, time.Millisecond, 0),
		Apps:    []splay.AppSpec{{Name: "no-such-app", Nodes: 1}},
	}
	if _, err := bad.Start(context.Background()); err == nil {
		t.Fatal("unknown built-in accepted")
	}
}
