// Command splay is the command-line client for the controller's
// web-services API.
//
// Usage:
//
//	splay [-ctl http://127.0.0.1:8080] run -app chord -nodes 10 [-params '{"bits":24}']
//	splay status <job-id>
//	splay stop <job-id>
//	splay daemons
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
)

func main() {
	ctl := flag.String("ctl", "http://127.0.0.1:8080", "controller API base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "run":
		runCmd(*ctl, args[1:])
	case "status":
		if len(args) != 2 {
			usage()
		}
		get(*ctl + "/jobs?id=" + args[1])
	case "stop":
		if len(args) != 2 {
			usage()
		}
		get(*ctl + "/jobs/stop?id=" + args[1])
	case "daemons":
		get(*ctl + "/daemons")
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: splay [-ctl URL] run|status|stop|daemons …")
	os.Exit(2)
}

func runCmd(ctl string, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	app := fs.String("app", "", "registered application name")
	nodes := fs.Int("nodes", 1, "number of instances")
	params := fs.String("params", "", "JSON application parameters")
	superset := fs.Float64("superset", 0, "selection superset factor (default 1.25)")
	fullList := fs.Bool("full-list", false, "ship the full node list as bootstrap")
	fs.Parse(args) //nolint:errcheck
	if *app == "" {
		log.Fatal("splay run: -app is required")
	}
	body := map[string]any{
		"app": *app, "nodes": *nodes,
		"superset": *superset, "full_list": *fullList,
	}
	if *params != "" {
		body["params"] = json.RawMessage(*params)
	}
	payload, err := json.Marshal(body)
	if err != nil {
		log.Fatalf("splay: %v", err)
	}
	resp, err := http.Post(ctl+"/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatalf("splay: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("splay: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}
