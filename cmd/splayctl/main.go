// Command splayctl runs the SPLAY controller: it accepts daemon
// connections, exposes the web-services API for job submission, and
// orchestrates deployments (§3.1).
//
// Usage:
//
//	splayctl [-port 5555] [-http 8080] [-host 127.0.0.1] [-tls]
//
// Submit jobs with the splay CLI or plain HTTP:
//
//	curl -X POST localhost:8080/jobs -d '{"app":"chord","nodes":10}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/livenet"
)

func main() {
	port := flag.Int("port", 5555, "daemon connection port")
	httpPort := flag.Int("http", 8080, "web-services API port (0 disables)")
	host := flag.String("host", "127.0.0.1", "advertised controller host")
	useTLS := flag.Bool("tls", false, "secure daemon connections with TLS")
	flag.Parse()

	rt := core.NewLiveRuntime(1)
	node := livenet.NewNode(*host)
	if *useTLS {
		cfg, err := livenet.SelfSignedTLS(*host)
		if err != nil {
			log.Fatalf("splayctl: tls: %v", err)
		}
		node.TLS = cfg
	}
	cfg := controller.DefaultConfig()
	cfg.Port = *port
	ctl := controller.New(rt, node, cfg)
	if err := ctl.Start(); err != nil {
		log.Fatalf("splayctl: %v", err)
	}
	log.Printf("splayctl: listening for daemons on :%d (tls=%v)", *port, *useTLS)

	if *httpPort == 0 {
		select {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/daemons", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"daemons": ctl.Daemons()}) //nolint:errcheck
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req struct {
				App      string          `json:"app"`
				Nodes    int             `json:"nodes"`
				Params   json.RawMessage `json:"params"`
				Superset float64         `json:"superset"`
				FullList bool            `json:"full_list"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			job, err := ctl.Submit(controller.JobSpec{
				App: req.App, Nodes: req.Nodes, Params: req.Params,
				Superset: req.Superset, FullList: req.FullList,
			})
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJob(w, job)
		case http.MethodGet:
			id := r.URL.Query().Get("id")
			job, ok := ctl.Job(id)
			if !ok {
				http.Error(w, "unknown job", http.StatusNotFound)
				return
			}
			writeJob(w, job)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/jobs/stop", func(w http.ResponseWriter, r *http.Request) {
		if err := ctl.StopJob(r.URL.Query().Get("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintln(w, "stopped")
	})
	log.Printf("splayctl: web-services API on :%d", *httpPort)
	if err := http.ListenAndServe(fmt.Sprintf(":%d", *httpPort), mux); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func writeJob(w http.ResponseWriter, job *controller.JobStatus) {
	out := map[string]any{
		"id": job.ID, "state": job.State.String(), "error": job.Err,
	}
	var nodes []string
	for _, a := range job.Deployed {
		nodes = append(nodes, a.String())
	}
	out["nodes"] = nodes
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}
