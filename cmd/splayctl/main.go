// Command splayctl runs the SPLAY controller: it accepts daemon
// connections, exposes the web-services API for job submission,
// orchestrates deployments (§3.1), and hosts the observability plane's
// aggregator so instrumented applications can stream metric reports.
//
// Usage:
//
//	splayctl [-port 5555] [-http 8080] [-host 127.0.0.1] [-tls]
//	         [-metrics-port 5556] [-metrics-key splay]
//	splayctl [-every 2s] watch http://host:8080
//
// Submit jobs with the splay CLI or plain HTTP:
//
//	curl -X POST localhost:8080/jobs -d '{"app":"chord","nodes":10}'
//
// Watch mode polls a running splayctl's /metrics endpoint and renders
// the aggregator's live population view — the in-flight counterpart of
// the log collector.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/metrics"
)

func main() {
	port := flag.Int("port", 5555, "daemon connection port")
	httpPort := flag.Int("http", 8080, "web-services API port (0 disables)")
	host := flag.String("host", "127.0.0.1", "advertised controller host")
	useTLS := flag.Bool("tls", false, "secure daemon connections with TLS")
	metricsPort := flag.Int("metrics-port", 5556, "metric report port (0 disables the aggregator)")
	metricsKey := flag.String("metrics-key", "splay", "key metric streams must present")
	every := flag.Duration("every", 2*time.Second, "watch mode poll interval")
	flag.Parse()

	if flag.Arg(0) == "watch" {
		if flag.NArg() < 2 {
			log.Fatal("splayctl watch: need a controller URL (e.g. http://127.0.0.1:8080)")
		}
		watch(flag.Arg(1), *every)
		return
	}

	rt := splay.NewLiveRuntime(1)
	node := livenet.NewNode(*host)
	if *useTLS {
		cfg, err := livenet.SelfSignedTLS(*host)
		if err != nil {
			log.Fatalf("splayctl: tls: %v", err)
		}
		node.TLS = cfg
	}
	cfg := controller.DefaultConfig()
	cfg.Port = *port
	ctl := controller.New(rt, node, cfg)

	// The observability plane: instrumented applications stream delta
	// reports here; /metrics serves the merged live view. The
	// controller's own instruments feed the same aggregator directly
	// (it is in-process, no stream needed).
	var agg *metrics.Aggregator
	if *metricsPort != 0 {
		reg := metrics.NewRegistry()
		ctl.SetInstruments(controller.NewInstruments(reg))
		var err error
		agg, err = metrics.NewAggregator(node, *metricsPort, func(fn func()) { go fn() })
		if err != nil {
			log.Fatalf("splayctl: aggregator: %v", err)
		}
		agg.Authorize(*metricsKey)
		// Bridge the local registry into the aggregate view over
		// loopback, so /metrics shows controller and application series
		// through one plane.
		go func() {
			rep, err := metrics.DialReporter(node, agg.Addr(), reg,
				metrics.ReporterConfig{Key: *metricsKey, Node: "ctl"})
			if err != nil {
				log.Printf("splayctl: metrics self-report: %v", err)
				return
			}
			for {
				time.Sleep(5 * time.Second)
				if err := rep.Flush(); err != nil {
					// Reconnect keeps the delta state, so the stream
					// resumes with increments after a transient failure.
					log.Printf("splayctl: metrics self-report: %v (redialing)", err)
					if err := rep.Reconnect(); err != nil {
						log.Printf("splayctl: metrics self-report: %v", err)
					}
				}
			}
		}()
		log.Printf("splayctl: metric aggregator on :%d (key %q)", *metricsPort, *metricsKey)
	}

	if err := ctl.Start(); err != nil {
		log.Fatalf("splayctl: %v", err)
	}
	log.Printf("splayctl: listening for daemons on :%d (tls=%v)", *port, *useTLS)

	if *httpPort == 0 {
		select {}
	}
	mux := http.NewServeMux()
	if agg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(agg.Snapshot()) //nolint:errcheck
		})
	}
	mux.HandleFunc("/daemons", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"daemons": ctl.Daemons()}) //nolint:errcheck
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req struct {
				App      string          `json:"app"`
				Nodes    int             `json:"nodes"`
				Params   json.RawMessage `json:"params"`
				Superset float64         `json:"superset"`
				FullList bool            `json:"full_list"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			job, err := ctl.Submit(controller.JobSpec{
				App: req.App, Nodes: req.Nodes, Params: req.Params,
				Superset: req.Superset, FullList: req.FullList,
			})
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJob(w, job)
		case http.MethodGet:
			id := r.URL.Query().Get("id")
			job, ok := ctl.Job(id)
			if !ok {
				http.Error(w, "unknown job", http.StatusNotFound)
				return
			}
			writeJob(w, job)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/jobs/stop", func(w http.ResponseWriter, r *http.Request) {
		if err := ctl.StopJob(r.URL.Query().Get("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintln(w, "stopped")
	})
	log.Printf("splayctl: web-services API on :%d", *httpPort)
	if err := http.ListenAndServe(fmt.Sprintf(":%d", *httpPort), mux); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// watch polls url/metrics and renders the live population view.
func watch(url string, every time.Duration) {
	for {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			log.Fatalf("splayctl watch: %v", err)
		}
		var snaps []metrics.SeriesSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snaps)
		resp.Body.Close()
		if err != nil {
			log.Fatalf("splayctl watch: decode: %v", err)
		}
		fmt.Printf("%s — %d series\n", time.Now().Format(time.TimeOnly), len(snaps))
		fmt.Printf("  %-28s %-12s %6s %12s %12s %12s %12s\n",
			"series", "kind", "nodes", "total/sum", "mean", "p50", "p90")
		for _, s := range snaps {
			switch s.Kind {
			case "counter":
				fmt.Printf("  %-28s %-12s %6d %12d\n", s.Name, s.Kind, s.Nodes, s.Total)
			case "gauge":
				fmt.Printf("  %-28s %-12s %6d %12d\n", s.Name, s.Kind, s.Nodes, s.Sum)
			default:
				fmt.Printf("  %-28s %-12s %6d %12d %12.1f %12d %12d\n",
					s.Name, s.Kind, s.Nodes, s.Count, s.Mean, s.P50, s.P90)
			}
		}
		fmt.Println()
		time.Sleep(every)
	}
}

func writeJob(w http.ResponseWriter, job *controller.JobStatus) {
	out := map[string]any{
		"id": job.ID, "state": job.State.String(), "error": job.Err,
	}
	var nodes []string
	for _, a := range job.Deployed {
		nodes = append(nodes, a.String())
	}
	out["nodes"] = nodes
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}
