// Command splayctl runs the SPLAY controller: it accepts daemon
// connections, exposes the web-services API for job submission,
// orchestrates deployments (§3.1), and hosts the observability plane's
// aggregator so instrumented applications can stream metric reports.
//
// Usage:
//
//	splayctl [-port 5555] [-http 8080] [-host 127.0.0.1] [-tls]
//	         [-metrics-port 5556] [-metrics-key splay]
//	splayctl watch [-every 2s] [-key k -job id] http://host:8080
//	splayctl faults inject [-kind crash|partition] [-count n] [-fraction f] http://host:8080
//	splayctl faults heal http://host:8080
//	splayctl submit -key k [-app chord] [-nodes 10] [-duration 30s] [-wait] http://host:8080
//	splayctl jobs -key k [-job id] http://host:8080
//	splayctl kill -key k -job id http://host:8080
//	splayctl usage -key k -tenant name http://host:8080
//	splayctl apply [-host http://host:8080 -key k [-wait]] scenario.yaml
//	splayctl validate scenario.yaml [more.yaml ...]
//	splayctl catalog
//
// Submit jobs with the splay CLI or plain HTTP:
//
//	curl -X POST localhost:8080/jobs -d '{"app":"chord","nodes":10}'
//
// Watch mode polls a running splayctl's /metrics endpoint and renders
// the aggregator's live population view — the in-flight counterpart of
// the log collector. With -job it instead follows one hosted job's
// lifecycle until it settles.
//
// Fault mode drives the controller's live actuators: "inject -kind
// crash" drops daemon control sessions (daemons started with reconnect
// redial with backoff), "inject -kind partition" blacklists a fraction
// of the population — the controller pushes the blacklist to every
// daemon, whose sandboxes then refuse traffic to the cut side — and
// "heal" clears the blacklist.
//
// The hosting subcommands (submit, jobs, kill, usage, watch -job)
// speak to a hosting plane — splayd -host, or any Session.Host
// handler — as the tenant owning -key. Submissions are serialized
// Scenarios: built from -app/-nodes/-params/-duration, or shipped
// from -file / -f (use "-" for stdin). A -file that is a scenario
// document (splay.IsConfigDocument) is compiled client-side against
// the built-in catalog, so typed errors surface before any network
// round-trip and what travels is always the canonical wire form.
// Every subcommand bounds each HTTP request with -timeout and exits
// non-zero on any error.
//
// The config-plane subcommands need no running controller: "apply"
// compiles a scenario document and runs it — in-process on a fresh
// simulated (or live) testbed, or hosted when -host names a platform
// — "validate" type-checks documents against the catalog, and
// "catalog" prints the catalog itself: every built-in application
// with its typed parameters, defaults and bounds.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/metrics"
)

func main() {
	port := flag.Int("port", 5555, "daemon connection port")
	httpPort := flag.Int("http", 8080, "web-services API port (0 disables)")
	host := flag.String("host", "127.0.0.1", "advertised controller host")
	useTLS := flag.Bool("tls", false, "secure daemon connections with TLS")
	metricsPort := flag.Int("metrics-port", 5556, "metric report port (0 disables the aggregator)")
	metricsKey := flag.String("metrics-key", "splay", "key metric streams must present")
	flag.Parse()

	if cmd := flag.Arg(0); cmd != "" {
		var err error
		switch cmd {
		case "watch":
			err = watchCmd(flag.Args()[1:])
		case "faults":
			err = faultsCmd(flag.Args()[1:])
		case "submit", "jobs", "kill", "usage":
			err = hostCmd(cmd, flag.Args()[1:])
		case "apply":
			err = applyCmd(flag.Args()[1:])
		case "validate":
			err = validateCmd(flag.Args()[1:])
		case "catalog":
			err = catalogCmd()
		default:
			err = fmt.Errorf("unknown command %q (want watch, faults, submit, jobs, kill, usage, apply, validate or catalog)", cmd)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "splayctl %s: %v\n", cmd, err)
			os.Exit(1)
		}
		return
	}

	rt := splay.NewLiveRuntime(1)
	node := livenet.NewNode(*host)
	if *useTLS {
		cfg, err := livenet.SelfSignedTLS(*host)
		if err != nil {
			log.Fatalf("splayctl: tls: %v", err)
		}
		node.TLS = cfg
	}
	cfg := controller.DefaultConfig()
	cfg.Port = *port
	ctl := controller.New(rt, node, cfg)

	// The observability plane: instrumented applications stream delta
	// reports here; /metrics serves the merged live view. The
	// controller's own instruments feed the same aggregator directly
	// (it is in-process, no stream needed).
	var agg *metrics.Aggregator
	if *metricsPort != 0 {
		reg := metrics.NewRegistry()
		ctl.SetInstruments(controller.NewInstruments(reg))
		var err error
		agg, err = metrics.NewAggregator(node, *metricsPort, func(fn func()) { go fn() })
		if err != nil {
			log.Fatalf("splayctl: aggregator: %v", err)
		}
		agg.Authorize(*metricsKey)
		// Bridge the local registry into the aggregate view over
		// loopback, so /metrics shows controller and application series
		// through one plane.
		go func() {
			rep, err := metrics.DialReporter(node, agg.Addr(), reg,
				metrics.ReporterConfig{Key: *metricsKey, Node: "ctl"})
			if err != nil {
				log.Printf("splayctl: metrics self-report: %v", err)
				return
			}
			for {
				time.Sleep(5 * time.Second)
				if err := rep.Flush(); err != nil {
					// Reconnect keeps the delta state, so the stream
					// resumes with increments after a transient failure.
					log.Printf("splayctl: metrics self-report: %v (redialing)", err)
					if err := rep.Reconnect(); err != nil {
						log.Printf("splayctl: metrics self-report: %v", err)
					}
				}
			}
		}()
		log.Printf("splayctl: metric aggregator on :%d (key %q)", *metricsPort, *metricsKey)
	}

	if err := ctl.Start(); err != nil {
		log.Fatalf("splayctl: %v", err)
	}
	log.Printf("splayctl: listening for daemons on :%d (tls=%v)", *port, *useTLS)

	if *httpPort == 0 {
		select {}
	}
	mux := http.NewServeMux()
	if agg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(agg.Snapshot()) //nolint:errcheck
		})
	}
	mux.HandleFunc("/daemons", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"daemons": ctl.Daemons()}) //nolint:errcheck
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req struct {
				App      string          `json:"app"`
				Nodes    int             `json:"nodes"`
				Params   json.RawMessage `json:"params"`
				Superset float64         `json:"superset"`
				FullList bool            `json:"full_list"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			job, err := ctl.Submit(controller.JobSpec{
				App: req.App, Nodes: req.Nodes, Params: req.Params,
				Superset: req.Superset, FullList: req.FullList,
			})
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJob(w, job)
		case http.MethodGet:
			id := r.URL.Query().Get("id")
			job, ok := ctl.Job(id)
			if !ok {
				http.Error(w, "unknown job", http.StatusNotFound)
				return
			}
			writeJob(w, job)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/jobs/stop", func(w http.ResponseWriter, r *http.Request) {
		if err := ctl.StopJob(r.URL.Query().Get("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintln(w, "stopped")
	})
	// Fault drills — the live counterparts of the scenario SDK's fault
	// plan, driven over HTTP so chaos tooling needs no Go. Crash drops
	// daemon control sessions (reconnect-enabled daemons redial with
	// backoff); partition blacklists part of the population, which the
	// controller pushes to every daemon's sandbox; heal clears it.
	mux.HandleFunc("/faults/inject", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Kind     string  `json:"kind"`
			Count    int     `json:"count"`
			Fraction float64 `json:"fraction"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		names := ctl.DaemonNames()
		sort.Strings(names)
		n := req.Count
		if n <= 0 && req.Fraction > 0 {
			n = int(req.Fraction * float64(len(names)))
		}
		if n <= 0 || n > len(names) {
			http.Error(w, fmt.Sprintf("need a count (or fraction) selecting 1..%d daemons", len(names)),
				http.StatusBadRequest)
			return
		}
		victims := names[:n]
		switch req.Kind {
		case "crash":
			dropped := make([]string, 0, n)
			for _, name := range victims {
				if ctl.DropDaemon(name) {
					dropped = append(dropped, name)
				}
			}
			json.NewEncoder(w).Encode(map[string]any{"kind": "crash", "dropped": dropped}) //nolint:errcheck
		case "partition":
			ctl.SetBlacklist(victims)
			json.NewEncoder(w).Encode(map[string]any{"kind": "partition", "blacklisted": victims}) //nolint:errcheck
		default:
			http.Error(w, "kind must be crash or partition", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/faults/heal", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		ctl.SetBlacklist(nil)
		json.NewEncoder(w).Encode(map[string]any{"healed": true, "daemons": ctl.Daemons()}) //nolint:errcheck
	})
	log.Printf("splayctl: web-services API on :%d", *httpPort)
	if err := http.ListenAndServe(fmt.Sprintf(":%d", *httpPort), mux); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// postJSON issues one POST bounded by timeout and returns the response
// body; non-2xx statuses become errors carrying the body.
func postJSON(url string, body []byte, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body) //nolint:errcheck // best-effort error body
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	return out, nil
}

// faultsCmd drives a running controller's fault endpoints: inject
// (crash or partition) and heal.
func faultsCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("need an action (inject or heal)")
	}
	action, rest := args[0], args[1:]
	fs := flag.NewFlagSet("faults "+action, flag.ExitOnError)
	kind := fs.String("kind", "crash", "fault to inject: crash or partition")
	count := fs.Int("count", 0, "number of daemons to hit")
	fraction := fs.Float64("fraction", 0, "population fraction to hit (alternative to -count)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	fs.Parse(rest) //nolint:errcheck // ExitOnError
	url := fs.Arg(0)
	if url == "" {
		return fmt.Errorf("%s: need a controller URL (e.g. http://127.0.0.1:8080)", action)
	}
	var out []byte
	var err error
	switch action {
	case "inject":
		body, _ := json.Marshal(map[string]any{ //nolint:errcheck // static shape
			"kind": *kind, "count": *count, "fraction": *fraction,
		})
		out, err = postJSON(url+"/faults/inject", body, *timeout)
	case "heal":
		out, err = postJSON(url+"/faults/heal", nil, *timeout)
	default:
		return fmt.Errorf("unknown action %q (want inject or heal)", action)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", action, err)
	}
	fmt.Print(string(out))
	return nil
}

// watchCmd polls a controller's /metrics view, or — with -key and
// -job — one hosted job's lifecycle until it settles.
func watchCmd(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	every := fs.Duration("every", 2*time.Second, "poll interval")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	key := fs.String("key", "", "tenant key (hosted job watch)")
	jobID := fs.String("job", "", "hosted job to follow until it settles")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	url := fs.Arg(0)
	if url == "" {
		return fmt.Errorf("need a controller URL (e.g. http://127.0.0.1:8080)")
	}
	if *jobID != "" {
		return watchJob(url, *key, *jobID, *every, *timeout)
	}
	for {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
		if err != nil {
			cancel()
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			return err
		}
		var snaps []metrics.SeriesSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snaps)
		resp.Body.Close()
		cancel()
		if err != nil {
			return fmt.Errorf("decode: %w", err)
		}
		fmt.Printf("%s — %d series\n", time.Now().Format(time.TimeOnly), len(snaps))
		fmt.Printf("  %-28s %-12s %6s %12s %12s %12s %12s\n",
			"series", "kind", "nodes", "total/sum", "mean", "p50", "p90")
		for _, s := range snaps {
			switch s.Kind {
			case "counter":
				fmt.Printf("  %-28s %-12s %6d %12d\n", s.Name, s.Kind, s.Nodes, s.Total)
			case "gauge":
				fmt.Printf("  %-28s %-12s %6d %12d\n", s.Name, s.Kind, s.Nodes, s.Sum)
			default:
				fmt.Printf("  %-28s %-12s %6d %12d %12.1f %12d %12d\n",
					s.Name, s.Kind, s.Nodes, s.Count, s.Mean, s.P50, s.P90)
			}
		}
		fmt.Println()
		time.Sleep(*every)
	}
}

// watchJob follows one hosted job, printing a row per state change
// until the job settles; a terminal state other than done is an error.
func watchJob(url, key, id string, every, timeout time.Duration) error {
	cl := splay.Connect(url, key)
	last := ""
	for {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		job, err := cl.Job(ctx, id)
		cancel()
		if err != nil {
			return err
		}
		if line := fmt.Sprintf("%s %s nodes=%d", job.ID, job.State, job.Nodes); line != last {
			fmt.Printf("%s  %s\n", time.Now().Format(time.TimeOnly), line)
			last = line
		}
		if job.State.Terminal() {
			if job.State != splay.HostDone {
				return fmt.Errorf("job %s settled as %s: %s", job.ID, job.State, job.Error)
			}
			return nil
		}
		time.Sleep(every)
	}
}

// hostCmd speaks to a hosting plane (splayd -host, or any Session.Host
// handler) as the tenant owning -key: submit serialized scenarios,
// list jobs, kill one, read usage.
func hostCmd(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	key := fs.String("key", "", "tenant key")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	jobID := fs.String("job", "", "job id (jobs: show one; kill: required)")
	tenant := fs.String("tenant", "", "tenant to account (usage)")
	app := fs.String("app", "chord", "application to deploy (submit)")
	nodes := fs.Int("nodes", 10, "instances to deploy (submit)")
	params := fs.String("params", "", "JSON parameter document for the app (submit)")
	name := fs.String("name", "", "job name (submit)")
	seed := fs.Int64("seed", 0, "scenario seed (submit; 0 = platform default)")
	duration := fs.Duration("duration", 30*time.Second, "workload window (submit)")
	file := fs.String("file", "", "submit this scenario — wire JSON, or a document compiled client-side (\"-\" = stdin)")
	fs.StringVar(file, "f", "", "shorthand for -file")
	wait := fs.Bool("wait", false, "poll until the job settles and print its result (submit)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	url := fs.Arg(0)
	if url == "" {
		return fmt.Errorf("need a hosting URL (e.g. http://127.0.0.1:8080)")
	}
	if *key == "" {
		return fmt.Errorf("need a tenant -key")
	}
	cl := splay.Connect(url, *key)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	switch cmd {
	case "submit":
		var data []byte
		var err error
		switch {
		case *file == "-":
			data, err = io.ReadAll(os.Stdin)
		case *file != "":
			data, err = os.ReadFile(*file)
		default:
			sc := splay.Scenario{
				Name: *name, Seed: *seed, Duration: *duration,
				Apps: []splay.AppSpec{{Name: *app, Nodes: *nodes, Params: []byte(*params)}},
			}
			data, err = sc.Marshal()
		}
		if err != nil {
			return err
		}
		if splay.IsConfigDocument(data) {
			// Compile here, not server-side: typed *ConfigErrors carry
			// the document position, and the wire bytes that travel are
			// exactly what a handwritten Scenario would marshal.
			data, err = splay.CompileConfig(data)
			if err != nil {
				return err
			}
		}
		return submitData(cl, data, *timeout, *wait)
	case "jobs":
		if *jobID != "" {
			job, err := cl.Job(ctx, *jobID)
			if err != nil {
				return err
			}
			return printJSON(job)
		}
		jobs, err := cl.Jobs(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-10s %6s  %-20s %s\n", "id", "state", "nodes", "apps", "error")
		for _, j := range jobs {
			fmt.Printf("%-12s %-10s %6d  %-20s %s\n",
				j.ID, j.State, j.Nodes, strings.Join(j.Apps, ","), j.Error)
		}
		return nil
	case "kill":
		if *jobID == "" {
			return fmt.Errorf("need a -job id")
		}
		if err := cl.Kill(ctx, *jobID); err != nil {
			return err
		}
		fmt.Printf("killed %s\n", *jobID)
		return nil
	case "usage":
		if *tenant == "" {
			return fmt.Errorf("need a -tenant name")
		}
		u, err := cl.Usage(ctx, *tenant)
		if err != nil {
			return err
		}
		return printJSON(u)
	}
	return fmt.Errorf("unknown hosting command %q", cmd)
}

// submitData ships wire scenario bytes to a hosting plane and, with
// wait, polls until the job settles and prints its result. Every HTTP
// request is individually bounded by timeout.
func submitData(cl *splay.Remote, data []byte, timeout time.Duration, wait bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	job, err := cl.SubmitRaw(ctx, data)
	cancel()
	if err != nil {
		return err
	}
	if !wait {
		return printJSON(job)
	}
	fmt.Fprintf(os.Stderr, "submitted %s (%s), waiting\n", job.ID, job.State)
	for {
		time.Sleep(time.Second)
		pctx, pcancel := context.WithTimeout(context.Background(), timeout)
		j, err := cl.Job(pctx, job.ID)
		pcancel()
		if err != nil {
			return err
		}
		if !j.State.Terminal() {
			continue
		}
		rctx, rcancel := context.WithTimeout(context.Background(), timeout)
		res, err := cl.Result(rctx, job.ID)
		rcancel()
		if err != nil {
			return err
		}
		if err := printJSON(res); err != nil {
			return err
		}
		if res.State != splay.HostDone {
			return fmt.Errorf("job %s settled as %s: %s", res.ID, res.State, res.Error)
		}
		return nil
	}
}

// applyCmd runs a scenario document. Without -host it compiles and
// executes the document in-process — the full no-Go path: testbed,
// deployment, faults, assertions — and prints the deployed jobs plus
// the aggregated metric view. With -host it compiles client-side and
// submits the canonical wire bytes to a hosting plane as -key's
// tenant.
func applyCmd(args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	hostURL := fs.String("host", "", "submit to this hosting URL instead of running in-process")
	key := fs.String("key", "", "tenant key (with -host)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout (with -host)")
	wait := fs.Bool("wait", false, "poll until the hosted job settles (with -host)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	path := fs.Arg(0)
	if path == "" {
		return fmt.Errorf("need a scenario document (e.g. examples/quickstart/scenario.yaml)")
	}
	if *hostURL != "" {
		if *key == "" {
			return fmt.Errorf("need a tenant -key with -host")
		}
		data, err := readDoc(path)
		if err != nil {
			return err
		}
		if splay.IsConfigDocument(data) {
			if data, err = splay.CompileConfig(data); err != nil {
				return err
			}
		}
		return submitData(splay.Connect(*hostURL, *key), data, *timeout, *wait)
	}
	sc, err := splay.LoadScenarioFile(path)
	if err != nil {
		return err
	}
	res, err := sc.Run(context.Background())
	if res != nil {
		for _, j := range res.Jobs {
			fmt.Printf("job %-10s %-8s %d instances\n", j.ID, j.State, len(j.Deployed))
		}
		if res.Metrics != nil {
			frames, bytes := res.Metrics.Received()
			fmt.Printf("telemetry: %d nodes, %d frames, %d bytes\n",
				res.Metrics.Nodes(), frames, bytes)
			for _, s := range res.Metrics.Snapshot() {
				switch s.Kind {
				case "counter":
					fmt.Printf("  %-28s %12d\n", s.Name, s.Total)
				case "gauge":
					fmt.Printf("  %-28s %12d\n", s.Name, s.Sum)
				default:
					fmt.Printf("  %-28s %12d  p50=%d p90=%d\n", s.Name, s.Count, s.P50, s.P90)
				}
			}
		}
	}
	return err
}

// validateCmd type-checks scenario documents against the built-in
// catalog without running anything; any invalid document makes the
// exit status non-zero.
func validateCmd(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() == 0 {
		return fmt.Errorf("need at least one scenario document")
	}
	bad := 0
	for _, path := range fs.Args() {
		data, err := readDoc(path)
		if err == nil {
			err = splay.ValidateConfig(data)
		}
		if err != nil {
			bad++
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d documents invalid", bad, fs.NArg())
	}
	return nil
}

// catalogCmd prints the built-in app catalog: what a document may
// reference, each parameter's kind, default and bounds.
func catalogCmd() error {
	for i, app := range splay.BuiltinCatalog().Apps() {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s — %s\n", app.Name, app.Doc)
		fmt.Printf("  %-16s %-9s %-10s %-22s %s\n", "param", "kind", "default", "bounds", "doc")
		for _, p := range app.Params {
			fmt.Printf("  %-16s %-9s %-10s %-22s %s\n",
				p.Name, p.Kind, p.FormatDefault(), p.FormatBounds(), p.Doc)
		}
	}
	return nil
}

// readDoc reads one document argument ("-" = stdin).
func readDoc(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// printJSON renders one API object for scripts: indented, stable keys.
func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func writeJob(w http.ResponseWriter, job *controller.JobStatus) {
	out := map[string]any{
		"id": job.ID, "state": job.State.String(), "error": job.Err,
	}
	var nodes []string
	for _, a := range job.Deployed {
		nodes = append(nodes, a.String())
	}
	out["nodes"] = nodes
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}
