// Command splayctl runs the SPLAY controller: it accepts daemon
// connections, exposes the web-services API for job submission,
// orchestrates deployments (§3.1), and hosts the observability plane's
// aggregator so instrumented applications can stream metric reports.
//
// Usage:
//
//	splayctl [-port 5555] [-http 8080] [-host 127.0.0.1] [-tls]
//	         [-metrics-port 5556] [-metrics-key splay]
//	splayctl [-every 2s] watch http://host:8080
//	splayctl faults inject [-kind crash|partition] [-count n] [-fraction f] http://host:8080
//	splayctl faults heal http://host:8080
//
// Submit jobs with the splay CLI or plain HTTP:
//
//	curl -X POST localhost:8080/jobs -d '{"app":"chord","nodes":10}'
//
// Watch mode polls a running splayctl's /metrics endpoint and renders
// the aggregator's live population view — the in-flight counterpart of
// the log collector.
//
// Fault mode drives the controller's live actuators: "inject -kind
// crash" drops daemon control sessions (daemons started with reconnect
// redial with backoff), "inject -kind partition" blacklists a fraction
// of the population — the controller pushes the blacklist to every
// daemon, whose sandboxes then refuse traffic to the cut side — and
// "heal" clears the blacklist.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/metrics"
)

func main() {
	port := flag.Int("port", 5555, "daemon connection port")
	httpPort := flag.Int("http", 8080, "web-services API port (0 disables)")
	host := flag.String("host", "127.0.0.1", "advertised controller host")
	useTLS := flag.Bool("tls", false, "secure daemon connections with TLS")
	metricsPort := flag.Int("metrics-port", 5556, "metric report port (0 disables the aggregator)")
	metricsKey := flag.String("metrics-key", "splay", "key metric streams must present")
	every := flag.Duration("every", 2*time.Second, "watch mode poll interval")
	flag.Parse()

	if flag.Arg(0) == "watch" {
		if flag.NArg() < 2 {
			log.Fatal("splayctl watch: need a controller URL (e.g. http://127.0.0.1:8080)")
		}
		watch(flag.Arg(1), *every)
		return
	}
	if flag.Arg(0) == "faults" {
		faultsCmd(flag.Args()[1:])
		return
	}

	rt := splay.NewLiveRuntime(1)
	node := livenet.NewNode(*host)
	if *useTLS {
		cfg, err := livenet.SelfSignedTLS(*host)
		if err != nil {
			log.Fatalf("splayctl: tls: %v", err)
		}
		node.TLS = cfg
	}
	cfg := controller.DefaultConfig()
	cfg.Port = *port
	ctl := controller.New(rt, node, cfg)

	// The observability plane: instrumented applications stream delta
	// reports here; /metrics serves the merged live view. The
	// controller's own instruments feed the same aggregator directly
	// (it is in-process, no stream needed).
	var agg *metrics.Aggregator
	if *metricsPort != 0 {
		reg := metrics.NewRegistry()
		ctl.SetInstruments(controller.NewInstruments(reg))
		var err error
		agg, err = metrics.NewAggregator(node, *metricsPort, func(fn func()) { go fn() })
		if err != nil {
			log.Fatalf("splayctl: aggregator: %v", err)
		}
		agg.Authorize(*metricsKey)
		// Bridge the local registry into the aggregate view over
		// loopback, so /metrics shows controller and application series
		// through one plane.
		go func() {
			rep, err := metrics.DialReporter(node, agg.Addr(), reg,
				metrics.ReporterConfig{Key: *metricsKey, Node: "ctl"})
			if err != nil {
				log.Printf("splayctl: metrics self-report: %v", err)
				return
			}
			for {
				time.Sleep(5 * time.Second)
				if err := rep.Flush(); err != nil {
					// Reconnect keeps the delta state, so the stream
					// resumes with increments after a transient failure.
					log.Printf("splayctl: metrics self-report: %v (redialing)", err)
					if err := rep.Reconnect(); err != nil {
						log.Printf("splayctl: metrics self-report: %v", err)
					}
				}
			}
		}()
		log.Printf("splayctl: metric aggregator on :%d (key %q)", *metricsPort, *metricsKey)
	}

	if err := ctl.Start(); err != nil {
		log.Fatalf("splayctl: %v", err)
	}
	log.Printf("splayctl: listening for daemons on :%d (tls=%v)", *port, *useTLS)

	if *httpPort == 0 {
		select {}
	}
	mux := http.NewServeMux()
	if agg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(agg.Snapshot()) //nolint:errcheck
		})
	}
	mux.HandleFunc("/daemons", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"daemons": ctl.Daemons()}) //nolint:errcheck
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req struct {
				App      string          `json:"app"`
				Nodes    int             `json:"nodes"`
				Params   json.RawMessage `json:"params"`
				Superset float64         `json:"superset"`
				FullList bool            `json:"full_list"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			job, err := ctl.Submit(controller.JobSpec{
				App: req.App, Nodes: req.Nodes, Params: req.Params,
				Superset: req.Superset, FullList: req.FullList,
			})
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			writeJob(w, job)
		case http.MethodGet:
			id := r.URL.Query().Get("id")
			job, ok := ctl.Job(id)
			if !ok {
				http.Error(w, "unknown job", http.StatusNotFound)
				return
			}
			writeJob(w, job)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/jobs/stop", func(w http.ResponseWriter, r *http.Request) {
		if err := ctl.StopJob(r.URL.Query().Get("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintln(w, "stopped")
	})
	// Fault drills — the live counterparts of the scenario SDK's fault
	// plan, driven over HTTP so chaos tooling needs no Go. Crash drops
	// daemon control sessions (reconnect-enabled daemons redial with
	// backoff); partition blacklists part of the population, which the
	// controller pushes to every daemon's sandbox; heal clears it.
	mux.HandleFunc("/faults/inject", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Kind     string  `json:"kind"`
			Count    int     `json:"count"`
			Fraction float64 `json:"fraction"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		names := ctl.DaemonNames()
		sort.Strings(names)
		n := req.Count
		if n <= 0 && req.Fraction > 0 {
			n = int(req.Fraction * float64(len(names)))
		}
		if n <= 0 || n > len(names) {
			http.Error(w, fmt.Sprintf("need a count (or fraction) selecting 1..%d daemons", len(names)),
				http.StatusBadRequest)
			return
		}
		victims := names[:n]
		switch req.Kind {
		case "crash":
			dropped := make([]string, 0, n)
			for _, name := range victims {
				if ctl.DropDaemon(name) {
					dropped = append(dropped, name)
				}
			}
			json.NewEncoder(w).Encode(map[string]any{"kind": "crash", "dropped": dropped}) //nolint:errcheck
		case "partition":
			ctl.SetBlacklist(victims)
			json.NewEncoder(w).Encode(map[string]any{"kind": "partition", "blacklisted": victims}) //nolint:errcheck
		default:
			http.Error(w, "kind must be crash or partition", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/faults/heal", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		ctl.SetBlacklist(nil)
		json.NewEncoder(w).Encode(map[string]any{"healed": true, "daemons": ctl.Daemons()}) //nolint:errcheck
	})
	log.Printf("splayctl: web-services API on :%d", *httpPort)
	if err := http.ListenAndServe(fmt.Sprintf(":%d", *httpPort), mux); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// faultsCmd drives a running controller's fault endpoints: inject
// (crash or partition) and heal.
func faultsCmd(args []string) {
	if len(args) < 1 {
		log.Fatal("splayctl faults: need an action (inject or heal)")
	}
	action, rest := args[0], args[1:]
	fs := flag.NewFlagSet("faults "+action, flag.ExitOnError)
	kind := fs.String("kind", "crash", "fault to inject: crash or partition")
	count := fs.Int("count", 0, "number of daemons to hit")
	fraction := fs.Float64("fraction", 0, "population fraction to hit (alternative to -count)")
	fs.Parse(rest) //nolint:errcheck // ExitOnError
	url := fs.Arg(0)
	if url == "" {
		log.Fatalf("splayctl faults %s: need a controller URL (e.g. http://127.0.0.1:8080)", action)
	}
	var resp *http.Response
	var err error
	switch action {
	case "inject":
		body, _ := json.Marshal(map[string]any{ //nolint:errcheck // static shape
			"kind": *kind, "count": *count, "fraction": *fraction,
		})
		resp, err = http.Post(url+"/faults/inject", "application/json", bytes.NewReader(body))
	case "heal":
		resp, err = http.Post(url+"/faults/heal", "application/json", nil)
	default:
		log.Fatalf("splayctl faults: unknown action %q (want inject or heal)", action)
	}
	if err != nil {
		log.Fatalf("splayctl faults %s: %v", action, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body) //nolint:errcheck // best-effort error body
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("splayctl faults %s: %s: %s", action, resp.Status, strings.TrimSpace(string(out)))
	}
	fmt.Print(string(out))
}

// watch polls url/metrics and renders the live population view.
func watch(url string, every time.Duration) {
	for {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			log.Fatalf("splayctl watch: %v", err)
		}
		var snaps []metrics.SeriesSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snaps)
		resp.Body.Close()
		if err != nil {
			log.Fatalf("splayctl watch: decode: %v", err)
		}
		fmt.Printf("%s — %d series\n", time.Now().Format(time.TimeOnly), len(snaps))
		fmt.Printf("  %-28s %-12s %6s %12s %12s %12s %12s\n",
			"series", "kind", "nodes", "total/sum", "mean", "p50", "p90")
		for _, s := range snaps {
			switch s.Kind {
			case "counter":
				fmt.Printf("  %-28s %-12s %6d %12d\n", s.Name, s.Kind, s.Nodes, s.Total)
			case "gauge":
				fmt.Printf("  %-28s %-12s %6d %12d\n", s.Name, s.Kind, s.Nodes, s.Sum)
			default:
				fmt.Printf("  %-28s %-12s %6d %12d %12.1f %12d %12d\n",
					s.Name, s.Kind, s.Nodes, s.Count, s.Mean, s.P50, s.P90)
			}
		}
		fmt.Println()
		time.Sleep(every)
	}
}

func writeJob(w http.ResponseWriter, job *controller.JobStatus) {
	out := map[string]any{
		"id": job.ID, "state": job.State.String(), "error": job.Err,
	}
	var nodes []string
	for _, a := range job.Deployed {
		nodes = append(nodes, a.String())
	}
	out["nodes"] = nodes
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}
