// Command splay-experiments regenerates the paper's evaluation: every
// figure and table of §5 as a runnable experiment printing the same
// rows/series (see DESIGN.md for the index and EXPERIMENTS.md for the
// recorded results).
//
// Each experiment is a single-threaded deterministic simulation, so
// independent experiments shard across CPU cores; -parallel controls the
// worker count (default GOMAXPROCS, 1 forces the old serial behaviour).
// Outputs are buffered per experiment and printed in order: the bytes are
// identical whatever the parallelism.
//
// Usage:
//
//	splay-experiments -list
//	splay-experiments -run fig6a [-scale 0.5] [-seed 2009]
//	splay-experiments -run all -scale 0.2 [-parallel 8]
//	splay-experiments -run lookup100k -workers 4
//	splay-experiments -run obsplane -live
//
// -live streams each experiment's rows to stdout as the simulation
// produces them instead of buffering per experiment (one experiment at
// a time, so rows stay ordered): the way to watch a monitored
// deployment — obsplane's aggregator view — converge in flight.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/splaykit/splay/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id, or 'all'")
	scale := flag.Float64("scale", 1.0, "population/workload scale in (0,1]")
	seed := flag.Int64("seed", 2009, "random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently (1 = serial)")
	workers := flag.Int("workers", 0, "threads per sharded-kernel experiment (lookup100k); 0/1 = serial, results identical regardless")
	list := flag.Bool("list", false, "list experiments")
	live := flag.Bool("live", false, "stream rows to stdout as they are produced (serial)")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Println("  " + id)
		}
		if *run == "" {
			os.Exit(0)
		}
	}
	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}

	specs := make([]experiments.Spec, len(ids))
	for i, id := range ids {
		specs[i] = experiments.Spec{ID: id, Opt: experiments.Options{Scale: *scale, Seed: *seed, Workers: *workers}}
	}
	start := time.Now()

	printMetrics := func(res *experiments.Result) {
		keys := make([]string, 0, len(res.Metrics))
		for k := range res.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("metric %-28s %.3f\n", k, res.Metrics[k])
		}
	}

	if *live {
		// Live mode: rows reach stdout the moment the simulation writes
		// them, so in-flight views (obsplane's aggregator rows) render
		// while the experiment runs rather than after it.
		for _, s := range specs {
			fmt.Printf("=== %s (scale %.2f) ===\n", s.ID, *scale)
			opt := s.Opt
			opt.Out = os.Stdout
			t0 := time.Now()
			res, err := experiments.Run(s.ID, opt)
			if err != nil {
				log.Fatalf("%s: %v", s.ID, err)
			}
			printMetrics(res)
			fmt.Printf("=== %s done in %s ===\n\n", s.ID, time.Since(t0).Round(time.Millisecond))
		}
		return
	}

	print := func(oc experiments.Outcome) {
		fmt.Printf("=== %s (scale %.2f) ===\n", oc.ID, *scale)
		if oc.Err != nil {
			log.Fatalf("%s: %v", oc.ID, oc.Err)
		}
		os.Stdout.Write(oc.Output) //nolint:errcheck
		printMetrics(oc.Res)
		fmt.Printf("=== %s done in %s ===\n\n", oc.ID, oc.Elapsed.Round(time.Millisecond))
	}

	// Stream results in submission order as they complete: the bytes are
	// identical to a serial run, but progress is visible and a failure
	// aborts as soon as every earlier experiment has printed.
	var mu sync.Mutex
	pending := make(map[int]experiments.Outcome)
	cursor := 0
	experiments.RunParallelFunc(specs, *parallel, func(i int, oc experiments.Outcome) {
		mu.Lock()
		defer mu.Unlock()
		pending[i] = oc
		for {
			next, ok := pending[cursor]
			if !ok {
				break
			}
			delete(pending, cursor)
			cursor++
			print(next)
		}
	})
	if len(specs) > 1 {
		fmt.Printf("total: %d experiments in %s (%d workers)\n",
			len(specs), time.Since(start).Round(time.Millisecond), *parallel)
	}
}
