// Command splay-experiments regenerates the paper's evaluation: every
// figure and table of §5 as a runnable experiment printing the same
// rows/series (see DESIGN.md for the index and EXPERIMENTS.md for the
// recorded results).
//
// Usage:
//
//	splay-experiments -list
//	splay-experiments -run fig6a [-scale 0.5] [-seed 2009]
//	splay-experiments -run all -scale 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"github.com/splaykit/splay/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id, or 'all'")
	scale := flag.Float64("scale", 1.0, "population/workload scale in (0,1]")
	seed := flag.Int64("seed", 2009, "random seed")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Println("  " + id)
		}
		if *run == "" {
			os.Exit(0)
		}
	}
	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		fmt.Printf("=== %s (scale %.2f) ===\n", id, *scale)
		res, err := experiments.Run(id, experiments.Options{
			Scale: *scale, Seed: *seed, Out: os.Stdout,
		})
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		keys := make([]string, 0, len(res.Metrics))
		for k := range res.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("metric %-28s %.3f\n", k, res.Metrics[k])
		}
		fmt.Printf("=== %s done in %s ===\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
