// Command splayd runs a SPLAY daemon on a testbed host: it connects to
// the controller, accepts jobs and hosts sandboxed application instances
// (§3.1). Applications come from the built-in registry (chord, pastry,
// cyclon, epidemic, bittorrent).
//
// Usage:
//
//	splayd -controller 127.0.0.1:5555 -name host-a [-tls]
package main

import (
	"flag"
	"log"
	"os"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/apps"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/logging"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/sandbox"
	"github.com/splaykit/splay/internal/transport"
)

func main() {
	ctlAddr := flag.String("controller", "127.0.0.1:5555", "controller address")
	name := flag.String("name", "127.0.0.1", "daemon name (advertised host)")
	useTLS := flag.Bool("tls", false, "secure the controller link with TLS")
	maxSockets := flag.Int("max-sockets", 0, "per-app socket limit (0 = unlimited)")
	maxTx := flag.Int64("max-tx", 0, "per-app lifetime egress bytes (0 = unlimited)")
	metricsAddr := flag.String("metrics", "", "aggregator address for metric reports (empty disables)")
	metricsKey := flag.String("metrics-key", "splay", "key presented to the aggregator")
	reconnect := flag.Bool("reconnect", false,
		"redial the controller with jittered exponential backoff when the session drops")
	flag.Parse()

	addr, err := transport.ParseAddr(*ctlAddr)
	if err != nil {
		log.Fatalf("splayd: %v", err)
	}
	rt := splay.NewLiveRuntime(time.Now().UnixNano())
	node := livenet.NewNode(*name)
	if *useTLS {
		cfg, err := livenet.SelfSignedTLS(*name)
		if err != nil {
			log.Fatalf("splayd: tls: %v", err)
		}
		node.TLS = cfg
	}
	cfg := daemon.DefaultConfig(*name)
	cfg.Net = sandbox.NetLimits{MaxSockets: *maxSockets, MaxTxBytes: *maxTx}
	cfg.Reconnect = *reconnect
	lg := logging.New(&logging.WriterSink{W: os.Stdout}, *name, cfg.Key, nil)
	d := daemon.New(rt, node, apps.Default(), cfg, lg)

	// The observability plane: the daemon's own instruments stream to
	// the controller-side aggregator as batched delta reports.
	if *metricsAddr != "" {
		maddr, err := transport.ParseAddr(*metricsAddr)
		if err != nil {
			log.Fatalf("splayd: metrics: %v", err)
		}
		reg := metrics.NewRegistry()
		d.SetInstruments(daemon.NewInstruments(reg))
		go func() {
			var rep *metrics.Reporter
			for {
				var err error
				rep, err = metrics.DialReporter(node, maddr, reg,
					metrics.ReporterConfig{Key: *metricsKey, Node: *name})
				if err == nil {
					break
				}
				log.Printf("splayd: metrics: %v (retrying in 30s)", err)
				time.Sleep(30 * time.Second)
			}
			for {
				time.Sleep(5 * time.Second)
				if err := rep.Flush(); err != nil {
					// Reconnect keeps the delta state: the stream resumes
					// with increments, never re-shipping lifetime totals.
					log.Printf("splayd: metrics: %v (redialing)", err)
					if err := rep.Reconnect(); err != nil {
						log.Printf("splayd: metrics: %v (retrying in 30s)", err)
						time.Sleep(30 * time.Second)
					}
				}
			}
		}()
	}

	for {
		if err := d.Connect(addr); err != nil {
			log.Printf("splayd: %v (retrying in 5s)", err)
			time.Sleep(5 * time.Second)
			continue
		}
		log.Printf("splayd %s: connected to %s", *name, addr)
		if *reconnect {
			// The daemon owns the redial loop from here: a dropped session
			// is redialed with jittered exponential backoff, and running
			// instances survive the gap.
			select {}
		}
		for d.Connected() {
			time.Sleep(time.Second)
		}
		log.Printf("splayd %s: connection lost, reconnecting", *name)
	}
}
