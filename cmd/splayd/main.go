// Command splayd runs a SPLAY daemon on a testbed host: it connects to
// the controller, accepts jobs and hosts sandboxed application instances
// (§3.1). Applications come from the built-in registry (chord, pastry,
// cyclon, epidemic, bittorrent).
//
// Usage:
//
//	splayd -controller 127.0.0.1:5555 -name host-a [-tls]
//	splayd -host [-port 5555] [-http 8080] [-capacity n]
//	       -tenant alice:ka:100 -tenant bob:kb
//
// Host mode is the hosting plane (the paper's §4 splayweb vision): one
// resident process owns the controller that plain splayd daemons
// connect to, and serves the multi-tenant HTTP/JSON job API on -http.
// Tenants (repeatable -tenant name:key[:maxnodes]) authenticate with
// their key, submit serialized Scenarios (splayctl submit or
// splay.Connect), and the platform queues, fair-share places, watches
// and kills their jobs on the shared fleet.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/apps"
	"github.com/splaykit/splay/internal/config"
	"github.com/splaykit/splay/internal/controller"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/hosting"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/logging"
	"github.com/splaykit/splay/internal/metrics"
	"github.com/splaykit/splay/internal/sandbox"
	"github.com/splaykit/splay/internal/transport"
)

// tenantFlags collects repeatable -tenant name:key[:maxnodes] values.
type tenantFlags []hosting.Tenant

func (t *tenantFlags) String() string {
	names := make([]string, len(*t))
	for i, ten := range *t {
		names[i] = ten.Name
	}
	return strings.Join(names, ",")
}

func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want name:key[:maxnodes], got %q", v)
	}
	ten := hosting.Tenant{Name: parts[0], Key: parts[1]}
	if len(parts) >= 3 && parts[2] != "" {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 0 {
			return fmt.Errorf("maxnodes in %q must be a non-negative integer", v)
		}
		ten.Quota.MaxNodes = n
	}
	*t = append(*t, ten)
	return nil
}

func main() {
	ctlAddr := flag.String("controller", "127.0.0.1:5555", "controller address")
	name := flag.String("name", "127.0.0.1", "daemon name (advertised host)")
	useTLS := flag.Bool("tls", false, "secure the controller link with TLS")
	maxSockets := flag.Int("max-sockets", 0, "per-app socket limit (0 = unlimited)")
	maxTx := flag.Int64("max-tx", 0, "per-app lifetime egress bytes (0 = unlimited)")
	metricsAddr := flag.String("metrics", "", "aggregator address for metric reports (empty disables)")
	metricsKey := flag.String("metrics-key", "splay", "key presented to the aggregator")
	reconnect := flag.Bool("reconnect", false,
		"redial the controller with jittered exponential backoff when the session drops")
	hostMode := flag.Bool("host", false,
		"run the resident hosting platform (controller + multi-tenant job API) instead of a daemon")
	hostPort := flag.Int("port", 5555, "daemon connection port (host mode)")
	httpPort := flag.Int("http", 8080, "hosting API port (host mode)")
	capacity := flag.Int("capacity", 0,
		"instance budget for hosted jobs (host mode; 0 sizes it to the live daemon count)")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "admit a tenant as name:key[:maxnodes] (host mode; repeatable)")
	flag.Parse()

	if *hostMode {
		if err := hostMain(*name, *hostPort, *httpPort, *useTLS, *capacity, tenants); err != nil {
			log.Printf("splayd -host: %v", err)
			os.Exit(1)
		}
		return
	}

	addr, err := transport.ParseAddr(*ctlAddr)
	if err != nil {
		log.Fatalf("splayd: %v", err)
	}
	rt := splay.NewLiveRuntime(time.Now().UnixNano())
	node := livenet.NewNode(*name)
	if *useTLS {
		cfg, err := livenet.SelfSignedTLS(*name)
		if err != nil {
			log.Fatalf("splayd: tls: %v", err)
		}
		node.TLS = cfg
	}
	cfg := daemon.DefaultConfig(*name)
	cfg.Net = sandbox.NetLimits{MaxSockets: *maxSockets, MaxTxBytes: *maxTx}
	cfg.Reconnect = *reconnect
	lg := logging.New(&logging.WriterSink{W: os.Stdout}, *name, cfg.Key, nil)
	d := daemon.New(rt, node, apps.Default(), cfg, lg)

	// The observability plane: the daemon's own instruments stream to
	// the controller-side aggregator as batched delta reports.
	if *metricsAddr != "" {
		maddr, err := transport.ParseAddr(*metricsAddr)
		if err != nil {
			log.Fatalf("splayd: metrics: %v", err)
		}
		reg := metrics.NewRegistry()
		d.SetInstruments(daemon.NewInstruments(reg))
		go func() {
			var rep *metrics.Reporter
			for {
				var err error
				rep, err = metrics.DialReporter(node, maddr, reg,
					metrics.ReporterConfig{Key: *metricsKey, Node: *name})
				if err == nil {
					break
				}
				log.Printf("splayd: metrics: %v (retrying in 30s)", err)
				time.Sleep(30 * time.Second)
			}
			for {
				time.Sleep(5 * time.Second)
				if err := rep.Flush(); err != nil {
					// Reconnect keeps the delta state: the stream resumes
					// with increments, never re-shipping lifetime totals.
					log.Printf("splayd: metrics: %v (redialing)", err)
					if err := rep.Reconnect(); err != nil {
						log.Printf("splayd: metrics: %v (retrying in 30s)", err)
						time.Sleep(30 * time.Second)
					}
				}
			}
		}()
	}

	for {
		if err := d.Connect(addr); err != nil {
			log.Printf("splayd: %v (retrying in 5s)", err)
			time.Sleep(5 * time.Second)
			continue
		}
		log.Printf("splayd %s: connected to %s", *name, addr)
		if *reconnect {
			// The daemon owns the redial loop from here: a dropped session
			// is redialed with jittered exponential backoff, and running
			// instances survive the gap.
			select {}
		}
		for d.Connected() {
			time.Sleep(time.Second)
		}
		log.Printf("splayd %s: connection lost, reconnecting", *name)
	}
}

// hostMain runs the hosting plane: a controller that plain splayd
// daemons connect to, wrapped by the multi-tenant hosting service and
// its HTTP/JSON API. The app registry lives in the daemons (hosted
// submissions reference built-ins by name), so the platform itself
// deploys nothing.
func hostMain(name string, port, httpPort int, useTLS bool, capacity int, tenants []hosting.Tenant) error {
	if len(tenants) == 0 {
		return fmt.Errorf("admit at least one -tenant name:key")
	}
	rt := splay.NewLiveRuntime(time.Now().UnixNano())
	node := livenet.NewNode(name)
	if useTLS {
		cfg, err := livenet.SelfSignedTLS(name)
		if err != nil {
			return fmt.Errorf("tls: %w", err)
		}
		node.TLS = cfg
	}
	cfg := controller.DefaultConfig()
	cfg.Port = port
	ctl := controller.New(rt, node, cfg)
	if err := ctl.Start(); err != nil {
		return err
	}
	// Admission validates every submission — wire JSON or a config
	// document — against the built-in app catalog: unknown apps and
	// out-of-range params bounce as bad_scenario before queuing.
	svc := hosting.New(rt, ctl, hosting.Config{Capacity: capacity, Catalog: config.Builtins()})
	for _, t := range tenants {
		if err := svc.AddTenant(t); err != nil {
			return err
		}
	}
	log.Printf("splayd -host: daemons connect on %s (tls=%v); job API on :%d (%d tenants)",
		ctl.Addr(), useTLS, httpPort, len(tenants))
	return http.ListenAndServe(fmt.Sprintf(":%d", httpPort), svc.Handler())
}
