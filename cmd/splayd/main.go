// Command splayd runs a SPLAY daemon on a testbed host: it connects to
// the controller, accepts jobs and hosts sandboxed application instances
// (§3.1). Applications come from the built-in registry (chord, pastry,
// cyclon, epidemic, bittorrent).
//
// Usage:
//
//	splayd -controller 127.0.0.1:5555 -name host-a [-tls]
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"github.com/splaykit/splay/internal/apps"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/daemon"
	"github.com/splaykit/splay/internal/livenet"
	"github.com/splaykit/splay/internal/logging"
	"github.com/splaykit/splay/internal/sandbox"
	"github.com/splaykit/splay/internal/transport"
)

func main() {
	ctlAddr := flag.String("controller", "127.0.0.1:5555", "controller address")
	name := flag.String("name", "127.0.0.1", "daemon name (advertised host)")
	useTLS := flag.Bool("tls", false, "secure the controller link with TLS")
	maxSockets := flag.Int("max-sockets", 0, "per-app socket limit (0 = unlimited)")
	maxTx := flag.Int64("max-tx", 0, "per-app lifetime egress bytes (0 = unlimited)")
	flag.Parse()

	addr, err := transport.ParseAddr(*ctlAddr)
	if err != nil {
		log.Fatalf("splayd: %v", err)
	}
	rt := core.NewLiveRuntime(time.Now().UnixNano())
	node := livenet.NewNode(*name)
	if *useTLS {
		cfg, err := livenet.SelfSignedTLS(*name)
		if err != nil {
			log.Fatalf("splayd: tls: %v", err)
		}
		node.TLS = cfg
	}
	cfg := daemon.DefaultConfig(*name)
	cfg.Net = sandbox.NetLimits{MaxSockets: *maxSockets, MaxTxBytes: *maxTx}
	lg := logging.New(&logging.WriterSink{W: os.Stdout}, *name, cfg.Key, nil)
	d := daemon.New(rt, node, apps.Default(), cfg, lg)

	for {
		if err := d.Connect(addr); err != nil {
			log.Printf("splayd: %v (retrying in 5s)", err)
			time.Sleep(5 * time.Second)
			continue
		}
		log.Printf("splayd %s: connected to %s", *name, addr)
		for d.Connected() {
			time.Sleep(time.Second)
		}
		log.Printf("splayd %s: connection lost, reconnecting", *name)
	}
}
