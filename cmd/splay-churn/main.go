// Command splay-churn provides the churn-trace tooling of §5.5: compile
// synthetic descriptions into traces, speed traces up, amplify their
// turnover, and summarize their dynamics.
//
// Usage:
//
//	splay-churn gen -script fig4.churn [-seed 1] > trace.txt
//	splay-churn speedup -factor 10 < trace.txt > fast.txt
//	splay-churn amplify -factor 2 [-seed 1] < trace.txt > heavy.txt
//	splay-churn stats [-bucket 1m] < trace.txt
//	splay-churn overnet [-nodes 620] [-minutes 50] > overnet.txt
//	splay-churn example        # prints the paper's Fig. 4 script
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/splaykit/splay/internal/churn"
	"github.com/splaykit/splay/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "speedup":
		speedup(os.Args[2:])
	case "amplify":
		amplify(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	case "overnet":
		overnet(os.Args[2:])
	case "example":
		fmt.Println(churn.PaperScript)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: splay-churn gen|speedup|amplify|stats|overnet|example …")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	path := fs.String("script", "", "churn script file (default: the paper's example)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args) //nolint:errcheck
	src := churn.PaperScript
	if *path != "" {
		data, err := os.ReadFile(*path)
		if err != nil {
			log.Fatalf("splay-churn: %v", err)
		}
		src = string(data)
	}
	script, err := churn.ParseScript(src)
	if err != nil {
		log.Fatalf("splay-churn: %v", err)
	}
	tr := churn.FromScript(script, *seed)
	if err := churn.WriteTrace(os.Stdout, tr); err != nil {
		log.Fatalf("splay-churn: %v", err)
	}
}

func readTrace() churn.Trace {
	tr, err := churn.ReadTrace(os.Stdin)
	if err != nil {
		log.Fatalf("splay-churn: %v", err)
	}
	return tr
}

func speedup(args []string) {
	fs := flag.NewFlagSet("speedup", flag.ExitOnError)
	factor := fs.Float64("factor", 2, "time compression factor")
	fs.Parse(args) //nolint:errcheck
	if err := churn.WriteTrace(os.Stdout, readTrace().SpeedUp(*factor)); err != nil {
		log.Fatal(err)
	}
}

func amplify(args []string) {
	fs := flag.NewFlagSet("amplify", flag.ExitOnError)
	factor := fs.Float64("factor", 2, "turnover amplification factor (≥1)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args) //nolint:errcheck
	if err := churn.WriteTrace(os.Stdout, readTrace().Amplify(*factor, *seed)); err != nil {
		log.Fatal(err)
	}
}

func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	bucket := fs.Duration("bucket", time.Minute, "aggregation window")
	fs.Parse(args) //nolint:errcheck
	tr := readTrace()
	pop, joins, leaves := tr.Population(*bucket)
	fmt.Printf("%-10s %8s %8s %8s\n", "window", "joins", "leaves", "total")
	for i := range pop {
		fmt.Printf("%-10s %8d %8d %8d\n", time.Duration(i)*(*bucket), joins[i], leaves[i], pop[i])
	}
	fmt.Printf("# events=%d duration=%s peak-slot=%d\n", len(tr), tr.Duration(), tr.MaxSlot())
}

func overnet(args []string) {
	fs := flag.NewFlagSet("overnet", flag.ExitOnError)
	nodes := fs.Int("nodes", 620, "target concurrent population")
	minutes := fs.Int("minutes", 50, "trace length")
	seed := fs.Int64("seed", 12, "random seed")
	fs.Parse(args) //nolint:errcheck
	cfg := workload.DefaultOvernet()
	cfg.Nodes = *nodes
	cfg.Duration = time.Duration(*minutes) * time.Minute
	cfg.Seed = *seed
	if err := churn.WriteTrace(os.Stdout, workload.OvernetTrace(cfg)); err != nil {
		log.Fatal(err)
	}
}
