package splay

import (
	"io"

	"github.com/splaykit/splay/internal/churn"
)

// ChurnSpec drives a scenario's population dynamics from a synthetic
// script or a recorded trace (the paper's §3.5 churn management): node
// slots join and leave on schedule, each start instantiating the
// scenario's first application and each stop killing it and taking the
// host down. The zero value means no churn.
type ChurnSpec struct {
	trace churn.Trace
}

// Enabled reports whether the spec carries a trace.
func (c ChurnSpec) Enabled() bool { return len(c.trace) > 0 }

// Slots is the host population the trace addresses.
func (c ChurnSpec) Slots() int {
	if !c.Enabled() {
		return 0
	}
	return c.trace.MaxSlot() + 1
}

// ChurnScript parses the paper's churn-description language ("at 30s
// join 100", "from 5m to 10m inc 10 churn 50%", …) and expands it into
// a trace with the given seed.
func ChurnScript(src string, seed int64) (ChurnSpec, error) {
	s, err := churn.ParseScript(src)
	if err != nil {
		return ChurnSpec{}, err
	}
	return ChurnSpec{trace: churn.FromScript(s, seed)}, nil
}

// ChurnTrace reads a recorded trace ("<offset_ms> <join|leave> <slot>"
// per line), e.g. a translated File System Master trace.
func ChurnTrace(r io.Reader) (ChurnSpec, error) {
	tr, err := churn.ReadTrace(r)
	if err != nil {
		return ChurnSpec{}, err
	}
	return ChurnSpec{trace: tr}, nil
}
