package splay

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/splaykit/splay/internal/config"
)

// The config plane: scenario documents. A document is a declarative,
// human-authorable description of a Scenario — testbed, applications
// with catalog-validated parameters, churn, faults, assertions, collect
// — in a strict YAML subset with human units ("30s", "512kbps", "64KB",
// "50%"). LoadScenario compiles one to a Scenario; the compiled form is
// the canonical wire format, so a document and its handwritten-Go
// equivalent produce byte-identical runs (invariant 11).

// ConfigError is the typed error every config-plane entry point
// returns: a machine-readable code plus the document position and
// schema path of the offending field. Nothing about a bad document is
// ever silently defaulted.
type ConfigError = config.Error

// Catalog is the app catalog: the typed parameter schemas documents are
// validated against.
type Catalog = config.Catalog

// AppSchema describes one catalog application.
type AppSchema = config.AppSchema

// CatalogParam is one typed parameter schema.
type CatalogParam = config.Param

// BuiltinCatalog returns the catalog of built-in applications (chord,
// pastry, cyclon, epidemic, bittorrent).
func BuiltinCatalog() *Catalog { return config.Builtins() }

// IsConfigDocument reports whether data looks like a scenario document
// rather than wire JSON.
func IsConfigDocument(data []byte) bool { return config.IsDocument(data) }

// CompileConfig compiles a scenario document to the canonical wire
// form (the Scenario.Marshal format) without instantiating a Scenario:
// the bytes splayctl submits and the hosting plane admits. The error,
// when non-nil, is a *ConfigError.
func CompileConfig(data []byte) ([]byte, error) {
	wire, perr := config.Compile(data, config.Options{})
	if perr != nil {
		return nil, perr
	}
	return wire, nil
}

// ValidateConfig checks a scenario document against the built-in
// catalog without running anything. The error, when non-nil, is a
// *ConfigError.
func ValidateConfig(data []byte) error {
	if perr := config.Validate(data, config.Options{}); perr != nil {
		return perr
	}
	return nil
}

// LoadScenario compiles an in-memory scenario document into a
// Scenario. Churn trace references are declined (a typed
// ErrUnsupported): in-memory documents have no directory to resolve
// them against — use LoadScenarioFile.
func LoadScenario(data []byte) (Scenario, error) {
	return loadScenario(data, config.Options{})
}

// LoadScenarioFile reads and compiles a scenario document; churn trace
// references resolve relative to the document's directory.
func LoadScenarioFile(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("splay: %w", err)
	}
	dir := filepath.Dir(path)
	return loadScenario(data, config.Options{
		Open: func(ref string) ([]byte, error) {
			if !filepath.IsAbs(ref) {
				ref = filepath.Join(dir, ref)
			}
			return os.ReadFile(ref)
		},
	})
}

func loadScenario(data []byte, opt config.Options) (Scenario, error) {
	wire, perr := config.Compile(data, opt)
	if perr != nil {
		return Scenario{}, perr
	}
	sc, err := UnmarshalScenario(wire)
	if err != nil {
		// The compiler emits the canonical wire format; a decode failure
		// here is a bug, not a user error.
		return Scenario{}, fmt.Errorf("splay: compiled scenario does not decode: %w", err)
	}
	return sc, nil
}
