package splay_test

// Tests for the Env capability surface: the sandbox limits (fs + socket
// quotas) enforced through the SDK, and denied-capability errors for
// everything a grant withholds.

import (
	"errors"
	"testing"
	"time"

	splay "github.com/splaykit/splay"
	"github.com/splaykit/splay/internal/core"
	"github.com/splaykit/splay/internal/sim"
	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/transport"
)

// newTestEnv builds an Env over a two-host simulated network.
func newTestEnv(t *testing.T, cfg splay.EnvConfig) (*splay.Env, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel()
	nw := simnet.New(k, simnet.Symmetric{RTT: time.Millisecond}, 2, 1)
	rt := core.NewSimRuntime(k, 1)
	ctx := core.NewAppContext(rt, nw.Node(0),
		core.JobInfo{Me: transport.Addr{Host: simnet.HostName(0), Port: 9000}}, nil)
	return splay.NewEnv(ctx, cfg), k
}

func TestEnvFSQuotaExhaustion(t *testing.T) {
	t.Parallel()
	env, _ := newTestEnv(t, splay.EnvConfig{
		FS: splay.FSLimits{MaxBytes: 8, MaxOpenFiles: 1},
	})
	fs, err := env.FS()
	if err != nil {
		t.Fatalf("FS: %v", err)
	}
	f, err := fs.Create("data")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write within quota: %v", err)
	}
	if _, err := f.Write([]byte{1}); !errors.Is(err, splay.ErrQuota) {
		t.Fatalf("write beyond quota: err = %v, want ErrQuota", err)
	}
	// Descriptor quota: the one open handle exhausts it.
	if _, err := fs.Create("other"); !errors.Is(err, splay.ErrTooManyFiles) {
		t.Fatalf("second open: err = %v, want ErrTooManyFiles", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := fs.Open("data"); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

func TestEnvSocketQuotaExhaustion(t *testing.T) {
	t.Parallel()
	env, _ := newTestEnv(t, splay.EnvConfig{
		Net: splay.NetLimits{MaxSockets: 2},
	})
	l1, err := env.Listen(1000)
	if err != nil {
		t.Fatalf("first listen: %v", err)
	}
	if _, err := env.Listen(1001); err != nil {
		t.Fatalf("second listen: %v", err)
	}
	if _, err := env.Listen(1002); !errors.Is(err, splay.ErrLimit) {
		t.Fatalf("third listen: err = %v, want ErrLimit", err)
	}
	l1.Close()
	if _, err := env.ListenPacket(1003); err != nil {
		t.Fatalf("listen after release: %v", err)
	}
}

func TestEnvTxQuotaAndBlacklist(t *testing.T) {
	t.Parallel()
	env, k := newTestEnv(t, splay.EnvConfig{
		Net: splay.NetLimits{MaxTxBytes: 4, Blacklist: []string{simnet.HostName(1)}},
	})
	var dialErr error
	k.Go(func() {
		_, dialErr = env.Dial(transport.Addr{Host: simnet.HostName(1), Port: 80}, time.Second)
	})
	k.Run()
	if !errors.Is(dialErr, splay.ErrBlacklisted) {
		t.Fatalf("dial to blacklisted host: err = %v, want ErrBlacklisted", dialErr)
	}
	// Loopback stream: the env-level tx quota bites after 4 bytes.
	var wErr error
	k.Go(func() {
		ln, err := env.Listen(2000)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		env.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 16)
			c.Read(buf) //nolint:errcheck
		})
		c, err := env.Dial(transport.Addr{Host: simnet.HostName(0), Port: 2000}, time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if _, err := c.Write([]byte("1234")); err != nil {
			t.Errorf("write within quota: %v", err)
			return
		}
		_, wErr = c.Write([]byte("5"))
	})
	k.Run()
	if !errors.Is(wErr, splay.ErrLimit) {
		t.Fatalf("write beyond tx quota: err = %v, want ErrLimit", wErr)
	}
}

func TestEnvDeniedCapabilities(t *testing.T) {
	t.Parallel()
	var capErr *splay.CapabilityError

	// Net-only grant: the filesystem is denied.
	netOnly, _ := newTestEnv(t, splay.EnvConfig{Caps: splay.CapNet})
	if _, err := netOnly.FS(); !errors.As(err, &capErr) || capErr.Cap != splay.CapFS {
		t.Fatalf("FS with net-only grant: err = %v, want CapabilityError{CapFS}", err)
	}
	if _, err := netOnly.Listen(1000); err != nil {
		t.Fatalf("granted capability failed: %v", err)
	}

	// FS-only grant: every socket surface is denied.
	fsOnly, k := newTestEnv(t, splay.EnvConfig{Caps: splay.CapFS})
	if _, err := fsOnly.Listen(1000); !errors.As(err, &capErr) || capErr.Cap != splay.CapNet {
		t.Fatalf("Listen: err = %v, want CapabilityError{CapNet}", err)
	}
	if _, err := fsOnly.ListenPacket(1000); !errors.As(err, &capErr) {
		t.Fatalf("ListenPacket: err = %v, want CapabilityError", err)
	}
	var dialErr error
	k.Go(func() { _, dialErr = fsOnly.Dial(transport.Addr{Host: "n1", Port: 80}, time.Second) })
	k.Run()
	if !errors.As(dialErr, &capErr) {
		t.Fatalf("Dial: err = %v, want CapabilityError", dialErr)
	}
	if _, err := fsOnly.Node(); !errors.As(err, &capErr) {
		t.Fatalf("Node: err = %v, want CapabilityError", err)
	}
	if _, err := fsOnly.NewRPCServer(); !errors.As(err, &capErr) {
		t.Fatalf("NewRPCServer: err = %v, want CapabilityError", err)
	}
	if _, err := fsOnly.NewRPCClient(); !errors.As(err, &capErr) {
		t.Fatalf("NewRPCClient: err = %v, want CapabilityError", err)
	}
	if _, err := fsOnly.FS(); err != nil {
		t.Fatalf("granted capability failed: %v", err)
	}

	// No collector wired: reporting is refused.
	if err := fsOnly.StartReporting(); !errors.Is(err, splay.ErrNoCollector) {
		t.Fatalf("StartReporting: err = %v, want ErrNoCollector", err)
	}
}

func TestEnvKillClosesTrackedSockets(t *testing.T) {
	t.Parallel()
	env, k := newTestEnv(t, splay.EnvConfig{})
	killed := false
	env.OnKill(func() { killed = true })
	var ln splay.Listener
	k.Go(func() {
		var err error
		ln, err = env.Listen(3000)
		if err != nil {
			t.Errorf("listen: %v", err)
		}
	})
	k.Run()
	env.AppContext().Kill()
	if !killed {
		t.Fatal("OnKill hook did not run")
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("listener survived the kill")
	}
}
