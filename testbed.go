package splay

import (
	"time"

	"github.com/splaykit/splay/internal/simnet"
	"github.com/splaykit/splay/internal/topology"
)

// Testbed selects where a Scenario provisions its controller and
// daemons: a simulated network model executed in virtual time, or live
// processes on real sockets. Constructors: PlanetLab, ModelNet, Uniform
// (simulation) and Live (real network).
type Testbed interface {
	// Daemons is the provisioned daemon population.
	Daemons() int
	isTestbed()
}

// simTestbed is a simulated testbed: a link model over total hosts
// (daemons plus the controller and, when metrics are collected, a
// dedicated monitoring host). kind (plus rtt/bps for Uniform) records
// which constructor built it, so a Scenario can serialize its testbed
// and Unmarshal can rebuild an equivalent one (see serialize.go).
type simTestbed struct {
	daemons int
	kind    string
	rtt     time.Duration // Uniform only
	bps     float64       // Uniform only
	build   func(total int, seed int64) (simnet.LinkModel, simnet.ProcDelayFunc)
}

func (t *simTestbed) Daemons() int { return t.daemons }
func (t *simTestbed) isTestbed()   {}

// PlanetLab simulates a PlanetLab-like testbed of the given daemon
// population: heavy-tailed host slowness, per-host asymmetric access
// links and a loss floor (the paper's §5.2-5.3 deployment environment).
func PlanetLab(daemons int) Testbed {
	return &simTestbed{daemons: daemons, kind: "planetlab", build: func(total int, seed int64) (simnet.LinkModel, simnet.ProcDelayFunc) {
		cfg := topology.DefaultPlanetLab(total)
		cfg.Seed = seed
		pl := topology.NewPlanetLab(cfg)
		return pl, pl.ProcDelay
	}}
}

// ModelNet simulates a ModelNet-style emulation cluster: a transit-stub
// topology with shortest-path delays (the paper's §5.2 cluster).
func ModelNet(daemons int) Testbed {
	return &simTestbed{daemons: daemons, kind: "modelnet", build: func(total int, seed int64) (simnet.LinkModel, simnet.ProcDelayFunc) {
		return topology.NewModelNet(topology.DefaultModelNet(total)), nil
	}}
}

// Uniform simulates a homogeneous cluster: every pair of hosts shares
// the same round-trip time and per-host bandwidth (0 = unlimited).
// Daemons may be 0 when a churn trace drives the population instead.
func Uniform(daemons int, rtt time.Duration, bps float64) Testbed {
	return &simTestbed{daemons: daemons, kind: "uniform", rtt: rtt, bps: bps, build: func(total int, seed int64) (simnet.LinkModel, simnet.ProcDelayFunc) {
		return simnet.Symmetric{RTT: rtt, Bps: bps}, nil
	}}
}

// liveTestbed provisions a controller and daemons in-process on real
// loopback sockets: the splayctl+splayd chain of the paper collapsed
// into one binary, as the quickstart runs it.
type liveTestbed struct {
	daemons  int
	host     string // controller (and aggregator) address
	daemonIP string // daemon addresses: daemonIP+".1", ".2", …
	basePort int    // first daemon's application port range
	portSpan int    // application ports per daemon
}

func (t *liveTestbed) Daemons() int { return t.daemons }
func (t *liveTestbed) isTestbed()   {}

// Live provisions an in-process controller plus the given number of
// daemons on loopback addresses (the controller on 127.0.0.1, daemons on
// 127.0.1.x), each daemon with its own application port range probed for
// availability. The controller and the metric aggregator bind ephemeral
// ports, so concurrent scenarios coexist on one machine.
func Live(daemons int) Testbed {
	return &liveTestbed{
		daemons:  daemons,
		host:     "127.0.0.1",
		daemonIP: "127.0.1",
		basePort: 21000,
		portSpan: 100,
	}
}
